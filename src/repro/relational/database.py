"""The :class:`Database`: tables, text indexes and FK adjacency.

This is the "source database instance" every MWeaver search runs over.
Besides row storage it owns two index families:

* per-column **inverted text indexes** (used by Algorithm 1 and by every
  containment predicate), and
* per-foreign-key **adjacency indexes** (used by the tuple-path
  instantiation and by the tree-query evaluator to hop from a tuple to
  its join partners without scanning).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import IntegrityError, UnknownRelationError
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.table import Table
from repro.text.errors import ErrorModel, default_error_model
from repro.text.inverted_index import ColumnIndex, LinearScanIndex, build_column_index

_EMPTY: tuple[int, ...] = ()


class Database:
    """A database instance over a :class:`DatabaseSchema`.

    Parameters
    ----------
    schema:
        The validated schema.
    name:
        Display name used in reports (e.g. ``"yahoo-movies"``).
    use_inverted_index:
        When false, text search degrades to linear scans — only useful
        for the index ablation benchmark.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        *,
        name: str = "db",
        use_inverted_index: bool = True,
    ) -> None:
        self.schema = schema
        self.name = name
        self.use_inverted_index = use_inverted_index
        self.tables: dict[str, Table] = {
            relation.name: Table(relation) for relation in schema
        }
        self._text_indexes: dict[tuple[str, str], ColumnIndex | LinearScanIndex] = {}
        self._fk_forward: dict[str, dict[int, tuple[int, ...]]] = {}
        self._fk_reverse: dict[str, dict[int, tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def table(self, relation: str) -> Table:
        """The :class:`~repro.relational.table.Table` for ``relation``."""
        try:
            return self.tables[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def insert(
        self, relation: str, values: Sequence[object] | Mapping[str, object]
    ) -> int:
        """Insert one row into ``relation``; returns the new row id.

        Inserting invalidates any indexes previously built over the
        relation, so bulk-load first and search after.
        """
        row_id = self.table(relation).insert(values)
        self._invalidate(relation)
        return row_id

    def insert_many(
        self,
        relation: str,
        rows: Iterable[Sequence[object] | Mapping[str, object]],
    ) -> list[int]:
        """Bulk insert; returns the new row ids."""
        table = self.table(relation)
        row_ids = [table.insert(row) for row in rows]
        if row_ids:
            self._invalidate(relation)
        return row_ids

    def _invalidate(self, relation: str) -> None:
        for key in [k for k in self._text_indexes if k[0] == relation]:
            del self._text_indexes[key]
        for foreign_key in self.schema.foreign_keys():
            if relation in (foreign_key.source, foreign_key.target):
                self._fk_forward.pop(foreign_key.name, None)
                self._fk_reverse.pop(foreign_key.name, None)

    def validate_referential_integrity(self) -> None:
        """Check every non-NULL FK value resolves to a referenced row.

        Raises :class:`~repro.exceptions.IntegrityError` on the first
        dangling reference found.
        """
        for foreign_key in self.schema.foreign_keys():
            source = self.table(foreign_key.source)
            positions = tuple(
                source.schema.position(column)
                for column in foreign_key.source_columns
            )
            referenced = self._target_key_index(foreign_key)
            for row_id, row in enumerate(source):
                key = tuple(row[position] for position in positions)
                if any(part is None for part in key):
                    continue
                if key not in referenced:
                    raise IntegrityError(
                        f"{foreign_key.name}: row {row_id} of "
                        f"{foreign_key.source!r} references missing key {key!r}"
                    )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def total_rows(self) -> int:
        """Total row count across all relations."""
        return sum(len(table) for table in self.tables.values())

    def summary(self) -> str:
        """One-line size summary for logs and reports."""
        return (
            f"{self.name}: {len(self.schema)} relations, "
            f"{self.schema.attribute_count()} attributes, "
            f"{self.total_rows()} rows"
        )

    # ------------------------------------------------------------------
    # Text search
    # ------------------------------------------------------------------

    def text_index(self, relation: str, attribute: str) -> ColumnIndex | LinearScanIndex:
        """The (lazily built, cached) text index over one column."""
        key = (relation, attribute)
        index = self._text_indexes.get(key)
        if index is None:
            values = self.table(relation).column(attribute)
            index = build_column_index(values, use_inverted=self.use_inverted_index)
            self._text_indexes[key] = index
        return index

    def warm_indexes(self) -> None:
        """Eagerly build every lazy cache (text indexes, FK adjacency).

        The text indexes and foreign-key adjacency maps are normally
        built on first use and memoised in plain dicts — fine for one
        thread, but a data race when concurrent readers share the
        instance.  Warming them up-front makes the database effectively
        immutable, so the service layer can serve many sessions from
        one shared copy without locking the read path.
        """
        for relation, attribute in self.schema.text_attribute_pairs():
            self.text_index(relation, attribute)
        for foreign_key in self.schema.foreign_keys():
            if foreign_key.name not in self._fk_forward:
                self._build_fk_adjacency(foreign_key)

    def search_attribute(
        self,
        relation: str,
        attribute: str,
        sample: str,
        model: ErrorModel | None = None,
    ) -> list[int]:
        """Row ids of ``relation`` whose ``attribute`` contains ``sample``."""
        model = model or default_error_model()
        return self.text_index(relation, attribute).search(model, sample)

    def attribute_contains(
        self,
        relation: str,
        attribute: str,
        sample: str,
        model: ErrorModel | None = None,
    ) -> bool:
        """Whether any row of ``relation.attribute`` contains ``sample``."""
        model = model or default_error_model()
        return self.text_index(relation, attribute).contains_any(model, sample)

    def attributes_containing(
        self, sample: str, model: ErrorModel | None = None
    ) -> list[tuple[str, str]]:
        """All ``(relation, attribute)`` pairs containing ``sample``.

        This is the per-sample entry of Algorithm 1's location map; the
        scan is restricted to attributes declared ``fulltext``.
        """
        model = model or default_error_model()
        return [
            (relation, attribute)
            for relation, attribute in self.schema.text_attribute_pairs()
            if self.attribute_contains(relation, attribute, sample, model)
        ]

    # ------------------------------------------------------------------
    # Foreign-key adjacency
    # ------------------------------------------------------------------

    def _target_key_index(self, foreign_key: ForeignKey) -> dict[tuple[object, ...], list[int]]:
        target = self.table(foreign_key.target)
        positions = tuple(
            target.schema.position(column) for column in foreign_key.target_columns
        )
        index: dict[tuple[object, ...], list[int]] = {}
        for row_id, row in enumerate(target):
            key = tuple(row[position] for position in positions)
            if any(part is None for part in key):
                continue
            index.setdefault(key, []).append(row_id)
        return index

    def _build_fk_adjacency(self, foreign_key: ForeignKey) -> None:
        source = self.table(foreign_key.source)
        positions = tuple(
            source.schema.position(column) for column in foreign_key.source_columns
        )
        target_index = self._target_key_index(foreign_key)
        forward: dict[int, tuple[int, ...]] = {}
        reverse_lists: dict[int, list[int]] = {}
        for row_id, row in enumerate(source):
            key = tuple(row[position] for position in positions)
            if any(part is None for part in key):
                continue
            matches = target_index.get(key)
            if not matches:
                continue
            forward[row_id] = tuple(matches)
            for target_row in matches:
                reverse_lists.setdefault(target_row, []).append(row_id)
        self._fk_forward[foreign_key.name] = forward
        self._fk_reverse[foreign_key.name] = {
            target_row: tuple(source_rows)
            for target_row, source_rows in reverse_lists.items()
        }

    def fk_targets(self, fk_name: str, source_row: int) -> tuple[int, ...]:
        """Rows of the *referenced* relation joined to ``source_row``.

        Follows the foreign key in its natural direction (child row →
        parent rows).  With a proper key on the target this is 0 or 1
        rows; the engine supports non-unique targets too.
        """
        if fk_name not in self._fk_forward:
            self._build_fk_adjacency(self.schema.foreign_key(fk_name))
        return self._fk_forward[fk_name].get(source_row, _EMPTY)

    def fk_sources(self, fk_name: str, target_row: int) -> tuple[int, ...]:
        """Rows of the *referencing* relation joined to ``target_row``.

        Follows the foreign key in reverse (parent row → child rows);
        the fan-out here is the "large tuple fan-out" the paper warns
        about for graph-search approaches.
        """
        if fk_name not in self._fk_reverse:
            self._build_fk_adjacency(self.schema.foreign_key(fk_name))
        return self._fk_reverse[fk_name].get(target_row, _EMPTY)

    def joined_rows(
        self, fk_name: str, row_id: int, *, from_source: bool
    ) -> tuple[int, ...]:
        """Join partners of ``row_id`` across ``fk_name``.

        ``from_source`` disambiguates direction, which matters for
        self-referencing constraints where both endpoints are the same
        relation.
        """
        if from_source:
            return self.fk_targets(fk_name, row_id)
        return self.fk_sources(fk_name, row_id)
