"""Chaos test: two sequential ``kill -9`` faults with self-healing.

The single-fault chaos test proves failover; this one proves the
*self-healing loop* restores full redundancy between faults.  With
R=2, losing two shards without repair in between would lose every
session whose replica set was exactly those two shards.  Here a
:class:`ShardSupervisor` respawns the first victim (same port, via
``pinned_args``), the heartbeat half-open path re-admits it, and the
anti-entropy repairer reseats its sessions from the coordinator's
journal — so the second ``kill -9`` still loses zero accepted state.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.cluster import CoordinatorProcess, ShardProcess, ShardSupervisor

pytestmark = pytest.mark.slow

FLOW_CELLS = (
    (0, 0, "Avatar"),
    (0, 1, "James Cameron"),
    (1, 0, "Big Fish"),
    (1, 1, "Tim Burton"),
)


def _call(host, port, method, path, body=None, timeout_s=30.0):
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = (
            {"Content-Type": "application/json"} if body is not None else {}
        )
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else None
    finally:
        conn.close()


def _call_until_200(host, port, method, path, body=None, deadline_s=45.0):
    """Retry through transient 503/504 refusals; fail on anything else."""
    deadline = time.monotonic() + deadline_s
    while True:
        status, reply = _call(host, port, method, path, body)
        if status in (200, 201):
            return status, reply
        assert status in (503, 504), (status, reply)
        assert time.monotonic() < deadline, f"{method} {path} never healed"
        time.sleep(0.2)


def _seed_session(host, port):
    status, body = _call(host, port, "POST", "/sessions", {})
    assert status == 201, body
    session_id = body["session_id"]
    for row, column, value in FLOW_CELLS:
        status, body = _call(
            host, port, "POST", f"/sessions/{session_id}/cells",
            {"row": row, "column": column, "value": value},
        )
        assert status == 200 and body["applied"] is True, body
    status, reference = _call(
        host, port, "GET",
        f"/sessions/{session_id}/candidates?limit=1&sql=1",
    )
    assert status == 200
    return session_id, reference


def test_double_fault_with_repair_in_between_loses_nothing(tmp_path):
    # Shards deliberately journal-less: a respawned shard comes back
    # *empty*, so redundancy can only return via anti-entropy reseats
    # from the coordinator journal — the path under test.
    shards = [ShardProcess(name=f"shard{i}") for i in range(3)]
    supervisor = ShardSupervisor(seed=11, poll_interval_s=0.1)
    coordinator = None
    try:
        for shard in shards:
            shard.start()
        for shard in shards:
            shard.wait_ready()
        coordinator = CoordinatorProcess(
            [shard.address for shard in shards],
            journal_dir=str(tmp_path / "coord"),
            heartbeat_interval_s=0.15,
            breaker_reset_s=0.5,
            readmit_threshold=2,
            repair_interval_s=0.25,
        ).start().wait_ready()
        host, port = coordinator.host, coordinator.port

        for shard in shards:
            supervisor.manage(shard)
        supervisor.start()

        flows = [_seed_session(host, port) for _ in range(3)]

        # --- fault 1: SIGKILL the first session's primary ------------
        status, health = _call(host, port, "GET", "/healthz")
        assert status == 200
        placement = health["sessions"]["placement"]
        first_primary = placement[flows[0][0]]["primary"]
        rounds_before = health["repair"]["rounds"]
        victim_a = next(s for s in shards if s.address == first_primary)
        victim_a.kill()
        assert not victim_a.alive()

        # The supervisor notices, backs off, respawns on the same port.
        deadline = time.monotonic() + 60.0
        while True:
            entry = next(
                e for e in supervisor.snapshot()
                if e["name"] == victim_a.name
            )
            if entry["respawns"] >= 1 and entry["alive"]:
                break
            assert time.monotonic() < deadline, "supervisor never respawned"
            time.sleep(0.1)
        respawned = supervisor.processes()[victim_a.name]
        assert respawned.address == victim_a.address  # pinned port

        # Heartbeats re-admit it and anti-entropy reseats its sessions:
        # wait for a repair round *after* the respawn to converge.
        deadline = time.monotonic() + 60.0
        while True:
            status, health = _call(host, port, "GET", "/healthz")
            assert status == 200
            repair = health["repair"]
            if (
                health["shards_up"] == len(shards)
                and repair["rounds"] > rounds_before
                and repair["converged"]
            ):
                break
            assert time.monotonic() < deadline, (
                f"cluster never healed: {health}"
            )
            time.sleep(0.2)
        assert repair["total_reseats"] >= 1  # the respawn came back empty

        # --- fault 2: SIGKILL the (possibly new) primary --------------
        status, health = _call(host, port, "GET", "/healthz")
        second_primary = (
            health["sessions"]["placement"][flows[0][0]]["primary"]
        )
        victim_b = next(
            proc for proc in supervisor.processes().values()
            if proc.address == second_primary
        )
        victim_b.kill()
        assert not victim_b.alive()

        # Zero accepted-state loss: every session still answers the
        # converged candidate it answered before either fault.
        for session_id, reference in flows:
            _, after = _call_until_200(
                host, port, "GET",
                f"/sessions/{session_id}/candidates?limit=1&sql=1",
            )
            assert after["candidates"] == reference["candidates"], (
                session_id
            )

        # And every cell survived both faults.
        status, health = _call(host, port, "GET", "/healthz")
        assert status == 200
        for session_id, _ in flows:
            cells = health["sessions"]["placement"][session_id]["cells"]
            assert cells == len(FLOW_CELLS), (session_id, cells)
    finally:
        supervisor.stop()
        if coordinator is not None:
            coordinator.terminate()
        for process in supervisor.processes().values():
            process.terminate()
        for shard in shards:
            shard.terminate()
