"""Stdlib HTTP adapter for the mapping service.

A :class:`ThreadingHTTPServer` (one thread per connection) whose handler
parses the request line, query string and JSON body, then delegates to
:meth:`repro.service.app.ServiceApp.handle`.  All policy — routing,
status codes, backpressure, deadlines — lives in the app; this module
only moves bytes.

:class:`MappingServer` wraps the server with a background-thread
lifecycle (``start`` / ``shutdown`` / context manager) so tests and the
load bench can bind port 0 and read the chosen port back, while the CLI
calls :meth:`MappingServer.serve_forever` to block.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.obs import get_logger
from repro.service.app import ServiceApp

_log = get_logger(__name__)

#: Largest accepted request body; bigger payloads answer 413.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP shim around ``app.handle``."""

    #: Set by :func:`make_server` on the generated subclass.
    app: ServiceApp

    server_version = "mweaver-service/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive: every response is sized
    # Nagle + delayed ACK turns the two-write (headers, body) response
    # into a ~40 ms stall per request on loopback; flush immediately.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        body, error = self._read_body()
        if error is not None:
            self._respond(*error)
            return
        status, payload, headers = self.app.handle(
            method, split.path, query, body
        )
        self._respond(status, payload, headers)

    def _read_body(
        self,
    ) -> tuple[dict[str, Any] | None,
               "tuple[int, dict[str, Any] | None, dict[str, str]] | None"]:
        """The JSON body, or a ready-to-send error response."""
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None, None
        if length > MAX_BODY_BYTES:
            return None, (413, {"error": "request body too large"}, {})
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, (400, {"error": f"invalid JSON body: {error}"}, {})
        if not isinstance(parsed, dict):
            return None, (400, {"error": "JSON body must be an object"}, {})
        return parsed, None

    def _respond(
        self,
        status: int,
        payload: "dict[str, Any] | str | None",
        headers: dict[str, str],
    ) -> None:
        # A str payload (Prometheus exposition, folded profiles) is
        # served verbatim as text/plain; dicts are JSON-encoded.  The
        # app may override Content-Type via its extra headers.
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        elif payload is not None:
            data = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            data = b""
            content_type = "application/json"
        self.send_response(status)
        if "Content-Type" not in headers:
            self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        if data:
            self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route the default stderr access log through ``repro.*``."""
        _log.debug("%s %s", self.address_string(), format % args)


def make_server(
    app: ServiceApp, host: str, port: int
) -> ThreadingHTTPServer:
    """A bound (not yet serving) threading HTTP server for ``app``."""
    handler = type("MappingHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class MappingServer:
    """Lifecycle wrapper: background serving, clean shutdown.

    ``port=0`` binds an ephemeral port; read the real one back from
    :attr:`port`.  As a context manager the server starts on entry and
    shuts down (closing the app's worker pool) on exit.
    """

    def __init__(
        self,
        app: ServiceApp,
        *,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.app = app
        self.host = host if host is not None else app.config.host
        self._server = make_server(
            app, self.host, port if port is not None else app.config.port
        )
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The actually bound TCP port."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MappingServer":
        """Serve on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="mweaver-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("mapping service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        _log.info("mapping service listening on %s", self.url)
        self._server.serve_forever()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: drain the app first, then stop serving.

        Ordering matters: the app stops *admitting* (new work answers
        503 ``reason="drain"``) while the listener keeps accepting, so
        clients get clean refusals instead of connection resets; once
        in-flight requests finish (or ``timeout_s`` passes) the
        listener stops and ``serve_forever`` returns.  The app drain
        flushes and closes the session journal.  Returns ``True`` when
        every in-flight request finished in time.  Idempotent with a
        later :meth:`shutdown`.
        """
        clean = self.app.drain(timeout_s)
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return clean

    def shutdown(self) -> None:
        """Stop serving, join the thread, close the app."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "MappingServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()
