"""Tests for ServiceConfig validation (exit-code-2 territory)."""

import dataclasses

import pytest

from repro.exceptions import ServiceConfigError
from repro.service.config import KNOWN_DATASETS, ServiceConfig


class TestValidate:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.validate() is config

    def test_known_datasets_cover_the_cli_spellings(self):
        assert KNOWN_DATASETS == ("running", "yahoo", "imdb")

    @pytest.mark.parametrize(
        ("overrides", "match"),
        [
            ({"datasets": ()}, "at least one dataset"),
            ({"datasets": ("bogus",)}, "unknown dataset"),
            ({"datasets": ("running", "running")}, "must not repeat"),
            ({"port": -1}, "port out of range"),
            ({"port": 70000}, "port out of range"),
            ({"scale": 0}, "scale"),
            ({"max_sessions": 0}, "max_sessions"),
            ({"workers": 0}, "workers"),
            ({"queue_size": 0}, "queue_size"),
            ({"session_ttl_s": 0.0}, "session_ttl_s"),
            ({"request_timeout_s": 0.0}, "request_timeout_s"),
            ({"session_ttl_s": 5.0, "request_timeout_s": 5.0}, "exceed"),
            ({"location_cache_size": -1}, "location_cache_size"),
            ({"retry_after_s": 0.0}, "retry_after_s"),
            ({"default_columns": ()}, "default_columns"),
        ],
    )
    def test_bad_knobs_raise(self, overrides, match):
        config = dataclasses.replace(ServiceConfig(), **overrides)
        with pytest.raises(ServiceConfigError, match=match):
            config.validate()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServiceConfig().port = 1  # type: ignore[misc]
