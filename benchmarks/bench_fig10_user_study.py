"""Figure 10 — the user study: time, keystrokes and clicks per user.

The paper's six panels plot, for ten users (D1–D2 experts, N1–N8
non-technical) on Yahoo Movies and IMDb, the overall time (a),
keystrokes (b) and mouse clicks (c/f) to complete the §6.2 mapping
task with MWeaver, Eirene and IBM InfoSphere Data Architect.

Headline results reproduced here with a simulated panel:

* MWeaver ≈ 1/5 of InfoSphere's time and ≈ 1/4 of Eirene's;
* ≈ half of Eirene's keystrokes; ≈ 1/5 of both tools' mouse clicks;
* satisfaction 4.7 / 3.45 / 2.7 (MWeaver / Eirene / InfoSphere).
"""

from repro.bench.reporting import format_table, write_result
from repro.datasets.workload import user_study_task_imdb, user_study_task_yahoo
from repro.study.study import run_user_study, satisfaction_scores
from repro.study.tools import MWeaverModel
from repro.study.users import default_user_panel


def test_fig10_user_study(benchmark, yahoo_db, imdb_db):
    study = run_user_study(
        {
            "yahoo-movies": (yahoo_db, user_study_task_yahoo()),
            "imdb": (imdb_db, user_study_task_imdb()),
        }
    )

    sections = []
    panel_letters = {
        ("yahoo-movies", "seconds"): "(a) Overall Time for Yahoo Movies (s)",
        ("yahoo-movies", "keystrokes"): "(b) Overall Keystrokes for Yahoo Movies",
        ("yahoo-movies", "clicks"): "(c) Overall Mouse Clicks for Yahoo Movies",
        ("imdb", "seconds"): "(d) Overall Time for IMDb (s)",
        ("imdb", "keystrokes"): "(e) Overall Keystrokes for IMDb",
        ("imdb", "clicks"): "(f) Overall Mouse Clicks for IMDb",
    }
    for (dataset, metric), title in panel_letters.items():
        panel = study.metric_panel(dataset, metric)
        users = [user for user, _value in panel["MWeaver"]]
        rows = [
            [tool, *(f"{value:.0f}" for _user, value in series)]
            for tool, series in panel.items()
        ]
        sections.append(format_table(["tool", *users], rows, title=title))

    scores = satisfaction_scores(study)
    summary = format_table(
        ["metric", "MWeaver", "Eirene", "InfoSphere"],
        [
            ["mean time (s)"]
            + [f"{study.mean_metric(t, 'seconds'):.1f}"
               for t in ("MWeaver", "Eirene", "InfoSphere")],
            ["mean keystrokes"]
            + [f"{study.mean_metric(t, 'keystrokes'):.1f}"
               for t in ("MWeaver", "Eirene", "InfoSphere")],
            ["mean clicks"]
            + [f"{study.mean_metric(t, 'clicks'):.1f}"
               for t in ("MWeaver", "Eirene", "InfoSphere")],
            ["satisfaction (1-5)"]
            + [f"{scores[t]:.2f}" for t in ("MWeaver", "Eirene", "InfoSphere")],
        ],
        title=(
            "Aggregates (paper: time ratios ~5x/~4x; satisfaction "
            "4.7/3.45/2.7)"
        ),
    )
    write_result(
        "fig10_user_study.txt", "\n\n".join(sections + [summary])
    )

    # Shape assertions: the paper's headline ratios.
    assert 3.5 <= study.time_ratio("MWeaver", "InfoSphere") <= 7.0
    assert 2.5 <= study.time_ratio("MWeaver", "Eirene") <= 6.0
    assert scores["MWeaver"] > 4.3
    assert scores["MWeaver"] > scores["Eirene"] > scores["InfoSphere"]

    # Headline micro-benchmark: one simulated MWeaver task completion.
    user = default_user_panel()[2]
    task = user_study_task_yahoo()
    benchmark(lambda: MWeaverModel().simulate(user, yahoo_db, task, seed=8))
