"""Flight recorder: a bounded ring of recent request span-trees.

When something goes wrong in production the trace you want is the one
you didn't think to collect.  The recorder keeps the last N request
traces in memory — and *pins* the interesting ones (slow, degraded,
errored, worker-killed) in a separate ring so a burst of healthy
traffic can't evict the request you're hunting.  ``GET
/debug/requests`` lists what's on board; ``GET /debug/requests/{id}``
returns one request's full span records (the
:func:`repro.obs.export.span_records` shape, ready for
``records_to_spans`` / ``render_tree`` / explain).

Records hold live :class:`~repro.obs.tracer.Span` objects and
serialize on *read*, not on record — recording is a deque append under
a lock, cheap enough for every request.  Spans are finished by the
time they're recorded, so reading them later races nothing.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from threading import Lock
from typing import Any

from repro.obs.export import span_records
from repro.obs.tracer import Span


class RequestRecord:
    """One recorded request: identity, verdicts, and its span tree."""

    __slots__ = (
        "id", "route", "status", "duration_s", "epoch_s",
        "interesting", "reasons", "spans",
    )

    def __init__(
        self,
        record_id: str,
        *,
        route: str,
        status: int,
        duration_s: float,
        epoch_s: float,
        interesting: bool,
        reasons: tuple[str, ...],
        spans: tuple[Span, ...],
    ) -> None:
        self.id = record_id
        self.route = route
        self.status = status
        self.duration_s = duration_s
        self.epoch_s = epoch_s
        self.interesting = interesting
        self.reasons = reasons
        self.spans = spans

    def summary(self) -> dict[str, Any]:
        """The listing row: everything but the span tree."""
        return {
            "id": self.id,
            "route": self.route,
            "status": self.status,
            "duration_s": self.duration_s,
            "epoch_s": self.epoch_s,
            "interesting": self.interesting,
            "reasons": list(self.reasons),
            "span_count": sum(1 for root in self.spans for _ in root.walk()),
        }

    def detail(self) -> dict[str, Any]:
        """The full record: summary plus serialized span records."""
        out = self.summary()
        out["spans"] = list(span_records(self.spans))
        return out


class FlightRecorder:
    """Two rings: everything recent, plus pinned interesting requests."""

    def __init__(
        self,
        capacity: int = 128,
        *,
        interesting_capacity: int | None = None,
        slow_s: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.capacity = capacity
        self.slow_s = slow_s
        self._recent: deque[RequestRecord] = deque(maxlen=capacity)
        self._interesting: deque[RequestRecord] = deque(
            maxlen=interesting_capacity or capacity
        )
        self._by_id: dict[str, RequestRecord] = {}
        self._lock = Lock()
        self._counter = itertools.count(1)
        self._recorded = 0
        self._dropped = 0

    def next_id(self) -> str:
        """A fresh request id (monotonic within the process)."""
        return f"req-{next(self._counter):06d}"

    def record(
        self,
        *,
        route: str,
        status: int,
        duration_s: float,
        spans: tuple[Span, ...] | list[Span],
        request_id: str | None = None,
        reasons: tuple[str, ...] | list[str] = (),
        epoch_s: float | None = None,
    ) -> RequestRecord:
        """File one finished request; returns the stored record.

        ``reasons`` carries caller-side verdicts ("degraded",
        "worker_killed"); the recorder adds its own "slow" (duration
        over ``slow_s``) and "error" (status >= 500 or an errored
        span) verdicts.  Any reason marks the record interesting and
        pins it in the interesting ring.
        """
        verdicts = list(reasons)
        if duration_s > self.slow_s:
            verdicts.append("slow")
        if status >= 500:
            verdicts.append("error")
        elif any(
            span.status == "error"
            for root in spans for span in root.walk()
        ):
            verdicts.append("span_error")
        record = RequestRecord(
            request_id or self.next_id(),
            route=route,
            status=status,
            duration_s=duration_s,
            epoch_s=epoch_s if epoch_s is not None else time.time(),
            interesting=bool(verdicts),
            reasons=tuple(verdicts),
            spans=tuple(spans),
        )
        with self._lock:
            self._recorded += 1
            evicted: list[RequestRecord] = []
            if len(self._recent) == self._recent.maxlen:
                evicted.append(self._recent[0])
            self._recent.append(record)
            if record.interesting:
                if len(self._interesting) == self._interesting.maxlen:
                    evicted.append(self._interesting[0])
                self._interesting.append(record)
            self._by_id[record.id] = record
            for old in evicted:
                # Only forget an id once it's out of *both* rings.
                if old not in self._recent and old not in self._interesting:
                    self._by_id.pop(old.id, None)
                    self._dropped += 1
        return record

    def get(self, record_id: str) -> RequestRecord | None:
        """The record for ``record_id``, or None if it aged out."""
        with self._lock:
            return self._by_id.get(record_id)

    def list(
        self, *, interesting_only: bool = False, limit: int = 50,
    ) -> list[dict[str, Any]]:
        """Most-recent-first listing rows (summaries, no span trees)."""
        with self._lock:
            source = self._interesting if interesting_only else self._recent
            records = list(source)[-limit:]
        return [record.summary() for record in reversed(records)]

    def stats(self) -> dict[str, Any]:
        """Occupancy and churn counters for /healthz and /metrics."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "recent": len(self._recent),
                "interesting": len(self._interesting),
                "recorded": self._recorded,
                "dropped": self._dropped,
            }
