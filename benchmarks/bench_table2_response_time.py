"""Table 2 — average response time for searching and pruning.

Paper's numbers (ms)::

    Task Set    m=3     m=4     m=5     m=6
    1  search  534.35  655.03  639.49  577.25
       prune    34.27   24.46   35.13   58.54
    2  search  177.98  363.32  407.69  450.91
       prune    27.23   40.63   58.24   62.20
    3  search  305.89  442.78  761.69  817.38
       prune    32.53   24.46   40.24   51.58

Expected shape: searching costs tens-to-hundreds of milliseconds and
interactive pruning is roughly an order of magnitude cheaper — the
property that makes per-keystroke feedback possible.
"""

from repro.bench.harness import run_feeder_aggregate, run_tpw_search
from repro.bench.reporting import format_table, write_result


def test_table2_response_time(benchmark, yahoo_db, task_sets, n_runs):
    rows = []
    ratios = []
    for task_set in task_sets:
        search_cells = []
        prune_cells = []
        for task in task_set.tasks:
            aggregate = run_feeder_aggregate(
                yahoo_db, task, n_runs=n_runs, seed=100 + task_set.set_id
            )
            search_cells.append(aggregate.search_ms)
            prune_cells.append(aggregate.prune_ms)
            if aggregate.prune_ms > 0:
                ratios.append(aggregate.search_ms / aggregate.prune_ms)
        rows.append([f"Set {task_set.set_id}", "searching (ms)", *search_cells])
        rows.append(["", "pruning (ms)", *prune_cells])

    table = format_table(
        ["Task Set", "phase", "m=3", "m=4", "m=5", "m=6"],
        rows,
        title="Table 2: average response time for searching and pruning",
    )
    write_result("table2_response_time.txt", table)

    # Shape: pruning is much cheaper than searching on average.
    assert ratios, "no pruning interactions measured"
    assert sum(ratios) / len(ratios) > 3.0

    # Headline micro-benchmark: a single first-row search (set 2, m=4).
    # One traced run first dumps the span tree for this exact workload
    # (results/table2_headline_trace.jsonl); the measured runs stay
    # untraced so the reported timing is the production path.
    task = task_sets[1].tasks[1]
    run_tpw_search(
        yahoo_db, task, seed=5, trace_name="table2_headline_trace.jsonl"
    )
    benchmark(lambda: run_tpw_search(yahoo_db, task, seed=5))
