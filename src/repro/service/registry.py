"""Process-wide read-only dataset registry and shared LocateSample cache.

Two pieces of cross-session state make the service scale past one user:

* :class:`DatasetRegistry` builds each configured dataset **once**
  (generation plus index warm-up is by far the most expensive step) and
  hands every session the same :class:`~repro.relational.database.Database`
  instance.  :meth:`Database.warm_indexes` runs at load time so the
  shared copy is effectively immutable — concurrent sessions only ever
  perform dict lookups on it.

* :class:`LocationCache` memoises the paper's LocateSample hot path
  across sessions.  Algorithm 1 scans every full-text attribute for a
  sample string; users of a spreadsheet UI keep typing the same values
  ("Avatar", "Tim Burton"…), so one bounded LRU keyed on
  ``(dataset, error model, normalized sample)`` turns the repeated scan
  into a lookup.  Entries are immutable tuples, and the whole cache is
  guarded by one lock — the critical section is a dict move, not the
  scan itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence

from repro.core.location import LocationMap
from repro.exceptions import ServiceConfigError
from repro.obs import get_logger, get_metrics
from repro.relational.database import Database
from repro.text.errors import ErrorModel

_log = get_logger(__name__)


def _build_dataset(name: str, scale: int) -> Database:
    """Construct one named dataset (imports deferred: they are heavy)."""
    if name == "running":
        from repro.datasets.running_example import build_running_example

        return build_running_example()
    if name == "yahoo":
        from repro.datasets.yahoo import build_yahoo_movies

        return build_yahoo_movies(n_movies=scale)
    if name == "imdb":
        from repro.datasets.imdb import build_imdb

        return build_imdb(n_movies=scale)
    raise ServiceConfigError(f"unknown dataset {name!r}")


class DatasetRegistry:
    """Named, shared, read-only databases, each built exactly once.

    ``builder`` is injectable for tests; the default builds the
    generated sources at ``scale`` movies.  :meth:`get` is thread-safe
    and blocks concurrent callers of the *same* dataset until the first
    build finishes (double-checked under one lock — dataset builds are
    rare, contention on the lock is not a concern).
    """

    def __init__(
        self,
        *,
        scale: int = 150,
        builder: Callable[[str, int], Database] | None = None,
    ) -> None:
        self._scale = scale
        self._builder = builder or _build_dataset
        self._lock = threading.Lock()
        self._databases: dict[str, Database] = {}

    def preload(self, names: Sequence[str]) -> None:
        """Build (and index-warm) every named dataset up-front."""
        for name in names:
            self.get(name)

    def get(self, name: str) -> Database:
        """The shared database for ``name``, built on first request."""
        with self._lock:
            db = self._databases.get(name)
            if db is None:
                _log.info("building dataset %r (scale=%d)", name, self._scale)
                db = self._builder(name, self._scale)
                db.warm_indexes()
                self._databases[name] = db
        return db

    def loaded(self) -> tuple[str, ...]:
        """Names of the datasets built so far, sorted."""
        with self._lock:
            return tuple(sorted(self._databases))


def normalize_sample(sample: str) -> str:
    """The cache key form of one sample: whitespace collapsed.

    Deliberately *not* case-folded — the configured error model decides
    case sensitivity, so the key must not merge strings the model could
    distinguish.  Whitespace runs are safe to collapse: every model
    tokenizes on whitespace.
    """
    return " ".join(sample.split())


def _model_key(model: ErrorModel) -> str:
    return f"{type(model).__module__}.{type(model).__qualname__}"


class LocationCache:
    """Bounded cross-session LRU for per-sample location entries.

    The unit of caching is **one sample string**, not the whole sample
    tuple: two sessions searching ``("Avatar", "Tim Burton")`` and
    ``("Avatar", "James Cameron")`` share the ``Avatar`` scan.  Exposes
    the ``location_map(db, samples, model)`` protocol
    :class:`~repro.core.tpw.TPWEngine` accepts.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple[str, str, str], tuple[tuple[str, str], ...]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _lookup(
        self, key: tuple[str, str, str]
    ) -> tuple[tuple[str, str], ...] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def _store(
        self, key: tuple[str, str, str], entry: tuple[tuple[str, str], ...]
    ) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def entries_for(
        self, db: Database, sample: str, model: ErrorModel
    ) -> tuple[tuple[str, str], ...]:
        """Cached ``(relation, attribute)`` occurrence pairs for one sample."""
        key = (db.name, _model_key(model), normalize_sample(sample))
        cached = self._lookup(key)
        metrics = get_metrics()
        if cached is not None:
            metrics.counter("repro.service.location_cache.hits").inc()
            return cached
        metrics.counter("repro.service.location_cache.misses").inc()
        entry = tuple(db.attributes_containing(sample, model))
        self._store(key, entry)
        return entry

    def location_map(
        self, db: Database, samples: Sequence[str], model: ErrorModel
    ) -> LocationMap:
        """Algorithm 1 through the cache (the TPWEngine hook)."""
        entries = {
            key: self.entries_for(db, sample, model)
            for key, sample in enumerate(samples)
        }
        return LocationMap(samples=tuple(samples), entries=entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters for ``/metrics`` and tests."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "max_entries": self.max_entries,
            }

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()
