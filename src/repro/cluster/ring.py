"""Consistent-hash ring with R-way replica sets for session placement.

Sessions pin to shards by hashing the session id onto a ring of
virtual nodes.  Consistent hashing (rather than ``hash(id) % N``)
keeps placement stable when the shard set changes: removing one shard
moves only that shard's arc, so a rolling restart does not re-home
every session in the cluster.

Replica sets come from walking the ring clockwise from the key's
position and collecting the first R *distinct* shards — the standard
Dynamo/Cassandra preference list.  The first entry is the session's
home (primary); the rest are failover targets in preference order.

Hashes are BLAKE2b, not Python's ``hash()``: placement must agree
between a coordinator and any tooling that reasons about it,
independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Sequence


def _position(key: str) -> int:
    """A key's position on the ring (stable across processes)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Immutable consistent-hash ring over named shards."""

    def __init__(
        self,
        shards: Sequence[str],
        *,
        replicas: int = 2,
        vnodes: int = 64,
    ) -> None:
        if not shards:
            raise ValueError("ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("shard names must be unique")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = tuple(shards)
        #: The R the operator asked for; the effective ``replicas`` is
        #: clamped to the member count, so membership changes re-derive
        #: it (adding a second shard to an R=2 ring restores R=2).
        self.requested_replicas = replicas
        self.replicas = min(replicas, len(self.shards))
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for shard in self.shards:
            for vnode in range(vnodes):
                points.append((_position(f"{shard}#{vnode}"), shard))
        points.sort()
        self._points = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def replica_set(self, key: str) -> tuple[str, ...]:
        """The R distinct shards owning ``key``, in preference order."""
        start = bisect.bisect(self._points, _position(key)) % len(self._points)
        chosen: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == self.replicas:
                    break
        return tuple(chosen)

    def primary(self, key: str) -> str:
        """The first (home) shard for ``key``."""
        return self.replica_set(key)[0]

    # -- membership (rings are immutable; changes build a new ring) ----

    def add(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` joined (placement-stable for the
        rest: only arcs the new shard's vnodes claim move)."""
        if shard in self.shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        return HashRing(
            self.shards + (shard,),
            replicas=self.requested_replicas,
            vnodes=self.vnodes,
        )

    def remove(self, shard: str) -> "HashRing":
        """A new ring without ``shard`` (only its arcs move)."""
        if shard not in self.shards:
            raise ValueError(f"shard {shard!r} is not on the ring")
        remaining = tuple(s for s in self.shards if s != shard)
        if not remaining:
            raise ValueError("cannot remove the last shard from the ring")
        return HashRing(
            remaining,
            replicas=self.requested_replicas,
            vnodes=self.vnodes,
        )

    def summary(self) -> dict[str, object]:
        """JSON-ready description for ``/healthz``."""
        return {
            "shards": list(self.shards),
            "replicas": self.replicas,
            "vnodes": self.vnodes,
        }
