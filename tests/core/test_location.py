"""Unit tests for sample-occurrence location (Algorithm 1)."""

from repro.core.location import build_location_map
from repro.text.errors import ExactModel


class TestBuildLocationMap:
    def test_unique_occurrence(self, running_db):
        lm = build_location_map(running_db, ["Avatar"])
        assert lm.attributes_of(0) == (("movie", "title"),)

    def test_multi_attribute_occurrence(self, running_db):
        """'Ed Wood' is both a movie title and a person name (Example 1)."""
        lm = build_location_map(running_db, ["Ed Wood"])
        pairs = set(lm.attributes_of(0))
        assert ("movie", "title") in pairs
        assert ("person", "name") in pairs
        # and the Ed Wood logline quotes the name too
        assert ("movie", "logline") in pairs

    def test_multiple_samples_indexed_by_position(self, running_db):
        lm = build_location_map(running_db, ["Avatar", "James Cameron"])
        assert lm.attributes_of(0) == (("movie", "title"),)
        assert ("person", "name") in lm.attributes_of(1)

    def test_relations_of(self, running_db):
        lm = build_location_map(running_db, ["Ed Wood"])
        assert set(lm.relations_of(0)) == {"movie", "person"}

    def test_attributes_in_relation(self, running_db):
        lm = build_location_map(running_db, ["Ed Wood"])
        assert set(lm.attributes_in_relation(0, "movie")) == {"title", "logline"}
        assert lm.attributes_in_relation(0, "company") == ()

    def test_empty_keys(self, running_db):
        lm = build_location_map(running_db, ["Avatar", "Nonexistent Thing"])
        assert lm.empty_keys() == (1,)

    def test_no_empty_keys(self, running_db):
        lm = build_location_map(running_db, ["Avatar"])
        assert lm.empty_keys() == ()

    def test_total_occurrence_attributes(self, running_db):
        lm = build_location_map(running_db, ["Avatar", "Ed Wood"])
        assert lm.total_occurrence_attributes() == len(lm.attributes_of(0)) + len(
            lm.attributes_of(1)
        )

    def test_custom_model(self, running_db):
        lm = build_location_map(running_db, ["Cameron"], model=ExactModel())
        assert lm.attributes_of(0) == ()  # no cell is exactly "Cameron"

    def test_key_columns_never_located(self, running_db):
        lm = build_location_map(running_db, ["1"])
        relations = {relation for relation, _attr in lm.attributes_of(0)}
        # integer keys are not fulltext; "1" may appear nowhere
        assert all(
            attr not in ("mid", "pid", "cid", "lid")
            for _rel, attr in lm.attributes_of(0)
        )
        del relations

    def test_samples_recorded(self, running_db):
        lm = build_location_map(running_db, ["Avatar", "Cameron"])
        assert lm.samples == ("Avatar", "Cameron")
