"""``repro.service`` — the concurrent mapping-as-a-service layer.

Turns the single-user :class:`~repro.core.session.MappingSession` into
a multi-user service (the deployment shape of the paper's interactive
evaluation — Section 5 is all about per-sample response time behind a
spreadsheet UI):

* :mod:`repro.service.config` — the :class:`ServiceConfig` knob set,
* :mod:`repro.service.registry` — shared read-only datasets plus the
  cross-session LocateSample LRU,
* :mod:`repro.service.sessions` — the named, TTL-evicting session
  table with per-session locks,
* :mod:`repro.service.workers` — the bounded worker pool (deadlines,
  cooperative cancellation, 429 backpressure),
* :mod:`repro.service.admission` — latency-aware load shedding (503 +
  ``Retry-After`` before the queue wait can blow the deadline),
* :mod:`repro.service.remote` / :mod:`repro.service.proctasks` — the
  parent and worker halves of ``--isolation=process`` mode, where each
  search runs in a supervised subprocess
  (:class:`repro.resilience.ProcessWorkerPool`),
* :mod:`repro.service.app` — transport-independent request handling,
* :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer``
  adapter behind ``mweaver serve`` (with SIGTERM graceful drain).

Quick in-process use::

    from repro.service import ServiceApp, ServiceConfig

    with ServiceApp(ServiceConfig(datasets=("running",))) as app:
        status, body, _ = app.handle("POST", "/sessions", None, {})
        sid = body["session_id"]
        app.handle("POST", f"/sessions/{sid}/cells", None,
                   {"row": 0, "column": 0, "value": "Avatar"})
"""

from __future__ import annotations

from repro.service.admission import AdmissionController
from repro.service.app import ServiceApp
from repro.service.config import KNOWN_DATASETS, ServiceConfig
from repro.service.http import MappingServer, make_server
from repro.service.registry import DatasetRegistry, LocationCache
from repro.service.remote import RemoteMappingSession
from repro.service.retry_after import (
    clamp_retry_after,
    retry_after_header,
)
from repro.service.sessions import ManagedSession, SessionManager
from repro.service.workers import Job, WorkerPool

__all__ = [
    "ServiceApp",
    "ServiceConfig",
    "KNOWN_DATASETS",
    "MappingServer",
    "make_server",
    "DatasetRegistry",
    "LocationCache",
    "SessionManager",
    "ManagedSession",
    "WorkerPool",
    "Job",
    "AdmissionController",
    "RemoteMappingSession",
    "retry_after_header",
    "clamp_retry_after",
]
