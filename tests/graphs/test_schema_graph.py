"""Unit tests for the schema graph (Definition 2)."""

import pytest

from repro.exceptions import UnknownRelationError
from repro.graphs.schema_graph import SchemaGraph
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from repro.relational.types import DataType

_INT = DataType.INTEGER


def self_loop_schema() -> DatabaseSchema:
    """movie plus a sequel table referencing movie twice."""
    return DatabaseSchema(
        [
            RelationSchema(
                "movie",
                (Attribute("mid", _INT, fulltext=False), Attribute("title")),
                ("mid",),
            ),
            RelationSchema(
                "sequel",
                (
                    Attribute("mid", _INT, fulltext=False),
                    Attribute("prev", _INT, fulltext=False),
                ),
                ("mid", "prev"),
                (
                    ForeignKey("sequel_mid", "sequel", ("mid",), "movie", ("mid",)),
                    ForeignKey("sequel_prev", "sequel", ("prev",), "movie", ("mid",)),
                ),
            ),
        ]
    )


class TestSchemaGraphRunningExample:
    def test_vertices_are_relations(self, running_db):
        graph = SchemaGraph(running_db.schema)
        assert graph.vertices == running_db.schema.relation_names

    def test_one_edge_per_fk(self, running_db):
        graph = SchemaGraph(running_db.schema)
        assert len(graph.edges) == len(running_db.schema.foreign_keys())

    def test_movie_degree(self, running_db):
        # movie is referenced by direct, write, produce, filmedin
        graph = SchemaGraph(running_db.schema)
        assert graph.degree("movie") == 4

    def test_neighbors_of_movie(self, running_db):
        graph = SchemaGraph(running_db.schema)
        assert set(graph.neighbors("movie")) == {
            "direct",
            "write",
            "produce",
            "filmedin",
        }

    def test_person_neighbors(self, running_db):
        graph = SchemaGraph(running_db.schema)
        assert set(graph.neighbors("person")) == {"direct", "write"}

    def test_unknown_relation(self, running_db):
        graph = SchemaGraph(running_db.schema)
        with pytest.raises(UnknownRelationError):
            graph.incident_edges("nope")

    def test_describe_contains_edges(self, running_db):
        text = SchemaGraph(running_db.schema).describe()
        assert "movie -[direct_mid]- direct" in text


class TestParallelEdgesAndLoops:
    def test_parallel_edges_kept(self):
        graph = SchemaGraph(self_loop_schema())
        edges = graph.incident_edges("sequel")
        assert len(edges) == 2
        assert {edge.name for edge in edges} == {"sequel_mid", "sequel_prev"}

    def test_neighbors_deduplicated(self):
        graph = SchemaGraph(self_loop_schema())
        assert graph.neighbors("sequel") == ("movie",)

    def test_movie_sees_both_edges(self):
        graph = SchemaGraph(self_loop_schema())
        assert graph.degree("movie") == 2

    def test_self_loop_appears_once(self):
        schema = DatabaseSchema(
            [
                RelationSchema(
                    "node",
                    (
                        Attribute("nid", _INT, fulltext=False),
                        Attribute("parent", _INT, fulltext=False),
                        Attribute("label"),
                    ),
                    ("nid",),
                    (ForeignKey("node_parent", "node", ("parent",), "node", ("nid",)),),
                )
            ]
        )
        graph = SchemaGraph(schema)
        assert graph.degree("node") == 1
        assert graph.incident_edges("node")[0].is_self_loop()
