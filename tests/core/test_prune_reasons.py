"""Each prune reason fires on a crafted schema and shows in the explain log.

Three reasons, three scenarios:

* ``zero-support`` — Example 7's Big Fish / Tim Burton input: the
  ``write`` pairwise path exists in the schema but has no supporting
  tuples.
* ``pmnj`` — a chain schema ``left - l1 - mid - l2 - right`` where
  joining the two sample attributes needs 4 joins; with PMNJ = 2 the
  walk enumeration stops at the horizon and the explain log records the
  truncated frontier.
* ``dominated`` — the 4-column running-example search weaves the same
  complete tuple path through several pair orders, so the weave levels
  must report dominated (duplicate-signature) candidates.
"""

import pytest

from repro import obs
from repro.config import TPWConfig
from repro.core.tpw import TPWEngine
from repro.obs.explain import SearchExplanation
from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from repro.relational.types import DataType

_INT = DataType.INTEGER


def _key(name: str) -> Attribute:
    return Attribute(name, _INT, fulltext=False)


def _fk(source: str, column: str, target: str) -> ForeignKey:
    return ForeignKey(
        name=f"{source}_{column}",
        source=source,
        source_columns=(column,),
        target=target,
        target_columns=("id",),
    )


def build_chain_db() -> Database:
    """``left - l1 - mid - l2 - right``: 4 joins end to end.

    ``left.val`` and ``right.val`` hold the sample values; the only
    join path between them crosses both link relations, which exceeds
    PMNJ = 2.
    """
    schema = DatabaseSchema(
        [
            RelationSchema("left", (_key("id"), Attribute("val")), ("id",)),
            RelationSchema("mid", (_key("id"), Attribute("tag")), ("id",)),
            RelationSchema("right", (_key("id"), Attribute("val")), ("id",)),
            RelationSchema(
                "l1",
                (_key("lid"), _key("mid")),
                ("lid", "mid"),
                (_fk("l1", "lid", "left"), _fk("l1", "mid", "mid")),
            ),
            RelationSchema(
                "l2",
                (_key("mid"), _key("rid")),
                ("mid", "rid"),
                (_fk("l2", "mid", "mid"), _fk("l2", "rid", "right")),
            ),
        ]
    )
    db = Database(schema, name="chain")
    db.insert("left", (1, "alpha"))
    db.insert("mid", (1, "bridge"))
    db.insert("right", (1, "omega"))
    db.insert("l1", (1, 1))
    db.insert("l2", (1, 1))
    db.validate_referential_integrity()
    return db


def explain_search(db, sample, config=None):
    with obs.scoped():
        result = TPWEngine(db, config).search(sample)
    assert result.trace is not None
    return result, SearchExplanation.from_span(result.trace)


class TestZeroSupport:
    def test_write_path_pruned(self, running_db):
        result, explanation = explain_search(
            running_db, ("Big Fish", "Tim Burton")
        )
        pruned = [
            path
            for path in explanation.pruned_paths()
            if path["reason"] == "zero-support"
        ]
        assert pruned, "the write path must be pruned with zero support"
        assert all(path["support"] == 0 for path in pruned)
        assert any("write" in path["path"] for path in pruned)
        # The direct path survives with support, and the search agrees.
        assert explanation.surviving_paths()
        assert result.n_candidates == 1

    def test_visible_in_trace_jsonl(self, running_db):
        result, _ = explain_search(running_db, ("Big Fish", "Tim Burton"))
        roots, _metrics = obs.parse_jsonl(obs.to_jsonl([result.trace]))
        records = [
            record
            for span in roots[0].walk()
            if span.name == "tpw.instantiate.pair"
            for record in span.attributes.get("decisions", ())
        ]
        assert any(record["reason"] == "zero-support" for record in records)


class TestPmnjBound:
    def test_chain_beyond_bound_yields_frontier(self):
        db = build_chain_db()
        config = TPWConfig(pmnj=2)
        result, explanation = explain_search(db, ("alpha", "omega"), config)
        # The 4-join path is out of reach: no candidate mapping exists.
        assert result.n_candidates == 0
        assert explanation.prune_totals()["pmnj"] >= 1
        assert explanation.pmnj_frontier, "truncated walks must be logged"
        assert all(
            record["reason"] == "pmnj" and record["depth"] == 2
            for record in explanation.pmnj_frontier
        )

    def test_raising_the_bound_recovers_the_mapping(self):
        db = build_chain_db()
        result, explanation = explain_search(
            db, ("alpha", "omega"), TPWConfig(pmnj=4)
        )
        assert result.n_candidates == 1
        assert explanation.surviving_paths()


class TestDominated:
    def test_weave_reports_dominated_paths(self, running_db):
        sample = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
        result, explanation = explain_search(running_db, sample)
        assert result.n_candidates >= 1
        level_records = [
            level for level in explanation.levels if "bases_in" in level
        ]
        assert level_records, "multi-level weave must report fuse stats"
        assert sum(level["dominated"] for level in level_records) >= 1
        assert explanation.prune_totals()["dominated"] >= 1
        # Every level's arithmetic must close: woven = kept + dominated.
        for level in level_records:
            assert level["woven"] == level["kept"] + level["dominated"]

    def test_dominated_examples_recorded(self, running_db):
        sample = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
        _result, explanation = explain_search(running_db, sample)
        examples = [
            example
            for level in explanation.levels
            for example in level.get("examples", ())
        ]
        assert examples, "dominated weave outcomes must leave examples"


class TestStatsConsistency:
    def test_explain_agrees_with_stats(self, running_db):
        sample = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
        result, explanation = explain_search(running_db, sample)
        assert len(explanation.surviving_paths()) == (
            result.stats.pairwise_valid_mapping_paths
        )
        woven_total = sum(
            level["woven"]
            for level in explanation.levels
            if "woven" in level
        )
        assert woven_total == sum(result.stats.woven_per_level.values())
