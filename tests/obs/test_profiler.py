"""The sampling profiler: folding, lifecycle, bounded aggregation."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs.profiler import MAX_STACKS, SamplingProfiler, fold_frame


def current_frame():
    return sys._getframe()


class TestFoldFrame:
    def test_folds_outermost_first(self):
        def inner():
            return fold_frame(sys._getframe())

        def outer():
            return inner()

        folded = outer()
        parts = folded.split(";")
        # The innermost frame is last; both helpers appear in order.
        assert parts[-1].endswith(":inner")
        assert parts[-2].endswith(":outer")
        assert all(":" in part for part in parts)

    def test_depth_is_bounded(self):
        def recurse(n):
            if n == 0:
                return fold_frame(sys._getframe(), max_depth=5)
            return recurse(n - 1)

        folded = recurse(20)
        assert folded.startswith("(truncated);")
        assert folded.count(";") == 5  # marker + 5 frames

    def test_none_frame_is_idle(self):
        assert fold_frame(None) == "(idle)"


class TestLifecycle:
    def test_rejects_non_positive_hz(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(0)

    def test_start_stop_and_running(self):
        profiler = SamplingProfiler(hz=200.0)
        assert not profiler.running
        assert profiler.start() is profiler
        assert profiler.running
        assert profiler.start() is profiler  # idempotent
        profiler.stop()
        assert not profiler.running

    def test_snapshot_without_start_is_empty(self):
        snapshot = SamplingProfiler().snapshot()
        assert snapshot["running"] is False
        assert snapshot["samples"] == 0
        assert snapshot["top"] == []


class TestSampling:
    def spin_until_sampled(self, profiler, deadline_s=5.0):
        """Busy-work until the profiler has collected some samples."""
        start = time.monotonic()
        while time.monotonic() - start < deadline_s:
            sum(i * i for i in range(5000))
            if profiler.snapshot(top=1)["samples"] >= 5:
                return
        pytest.fail("profiler collected no samples in time")

    def test_captures_running_stacks_in_folded_form(self):
        profiler = SamplingProfiler(hz=500.0).start()
        try:
            self.spin_until_sampled(profiler)
            folded = profiler.folded()
        finally:
            profiler.stop()
        assert folded
        for line in folded.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) >= 1
        # This very test function must show up somewhere in the stacks.
        assert "test_profiler.py:" in folded

    def test_folded_is_sorted_hottest_first_and_top_limits(self):
        profiler = SamplingProfiler(hz=500.0).start()
        try:
            self.spin_until_sampled(profiler)
        finally:
            profiler.stop()
        counts = [
            int(line.rpartition(" ")[2])
            for line in profiler.folded().splitlines()
        ]
        assert counts == sorted(counts, reverse=True)
        assert len(profiler.folded(top=1).splitlines()) <= 1

    def test_excluded_threads_are_not_sampled(self):
        profiler = SamplingProfiler(hz=500.0)
        stop = threading.Event()

        def marked_thread_body_for_exclusion():
            profiler.exclude_thread()
            stop.wait()

        thread = threading.Thread(
            target=marked_thread_body_for_exclusion, daemon=True
        )
        thread.start()
        time.sleep(0.05)  # let the exclusion register before sampling
        profiler.start()
        try:
            self.spin_until_sampled(profiler)
        finally:
            profiler.stop()
            stop.set()
            thread.join(timeout=2.0)
        assert "marked_thread_body_for_exclusion" not in profiler.folded()

    def test_reset_clears_aggregates(self):
        profiler = SamplingProfiler(hz=500.0).start()
        try:
            self.spin_until_sampled(profiler)
        finally:
            profiler.stop()
        assert profiler.snapshot()["samples"] >= 5
        profiler.reset()
        snapshot = profiler.snapshot()
        assert snapshot["samples"] == 0
        assert snapshot["distinct_stacks"] == 0
        assert profiler.folded() == ""


class TestBoundedMemory:
    def test_overflow_stacks_collapse_into_other(self):
        profiler = SamplingProfiler(hz=1.0)  # never started: direct poke
        with profiler._lock:
            for index in range(MAX_STACKS):
                profiler._stacks[f"stack-{index}"] = 1
        # Simulate what _run does for a brand-new stack at capacity.
        stack = "one-more-stack"
        with profiler._lock:
            if stack in profiler._stacks or (
                len(profiler._stacks) < MAX_STACKS
            ):
                profiler._stacks[stack] = 1
            else:
                profiler._stacks["(other)"] = (
                    profiler._stacks.get("(other)", 0) + 1
                )
        assert "one-more-stack" not in profiler._stacks
        assert profiler._stacks["(other)"] == 1
