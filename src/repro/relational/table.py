"""Row storage for a single relation.

Rows are stored as tuples in insertion order; a row's position is its
*row id*, the stable identity that tuple paths (Definition 5) carry
around.  The paper calls this the "universal tuple id" (Appendix A.3) —
there it is synthesized from relation name plus primary key values; here
the (relation, row id) pair plays that role directly.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.exceptions import IntegrityError
from repro.relational.schema import RelationSchema
from repro.relational.types import coerce_value


class Table:
    """Instance of one relation.

    Values are validated and coerced against the relation schema on
    insert.  Primary-key uniqueness is enforced eagerly when the
    relation declares a key.
    """

    __slots__ = ("schema", "_rows", "_pk_index", "_pk_positions")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[object, ...]] = []
        self._pk_positions = tuple(
            schema.position(column) for column in schema.primary_key
        )
        self._pk_index: dict[tuple[object, ...], int] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self._rows)

    @property
    def name(self) -> str:
        """Relation name (mirrors the schema)."""
        return self.schema.name

    def insert(self, values: Sequence[object] | Mapping[str, object]) -> int:
        """Insert a row; returns its row id.

        Accepts either a positional sequence matching the declared
        attribute order, or a mapping from attribute name to value
        (missing attributes become NULL).
        """
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.schema.attribute_names)
            if unknown:
                raise IntegrityError(
                    f"{self.name}: unknown attributes in insert: {sorted(unknown)}"
                )
            row_values: list[object] = [
                values.get(attribute.name) for attribute in self.schema.attributes
            ]
        else:
            if len(values) != self.schema.arity:
                raise IntegrityError(
                    f"{self.name}: expected {self.schema.arity} values, "
                    f"got {len(values)}"
                )
            row_values = list(values)
        coerced = tuple(
            coerce_value(value, attribute.data_type, f"{self.name}.{attribute.name}")
            for value, attribute in zip(row_values, self.schema.attributes)
        )
        row_id = len(self._rows)
        if self._pk_positions:
            key = tuple(coerced[position] for position in self._pk_positions)
            if any(part is None for part in key):
                raise IntegrityError(f"{self.name}: NULL in primary key {key!r}")
            if key in self._pk_index:
                raise IntegrityError(f"{self.name}: duplicate primary key {key!r}")
            self._pk_index[key] = row_id
        self._rows.append(coerced)
        return row_id

    def row(self, row_id: int) -> tuple[object, ...]:
        """The row stored under ``row_id``."""
        return self._rows[row_id]

    def value(self, row_id: int, attribute: str) -> object:
        """One cell: row ``row_id``, column ``attribute``."""
        return self._rows[row_id][self.schema.position(attribute)]

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in row-id order."""
        position = self.schema.position(attribute)
        return [row[position] for row in self._rows]

    def row_as_dict(self, row_id: int) -> dict[str, object]:
        """Row ``row_id`` as an attribute-name → value mapping."""
        return dict(zip(self.schema.attribute_names, self._rows[row_id]))

    def lookup_pk(self, key: tuple[object, ...]) -> int | None:
        """Row id holding primary key ``key``, or ``None``."""
        if not self._pk_positions:
            raise IntegrityError(f"{self.name}: relation has no primary key")
        return self._pk_index.get(key)

    def row_ids(self) -> range:
        """All row ids (``0 .. len-1``)."""
        return range(len(self._rows))
