"""Deployment knobs for the mapping service (:mod:`repro.service`).

One frozen dataclass holds every tunable the server exposes; the CLI
builds it from ``mweaver serve`` flags and :meth:`ServiceConfig.validate`
turns inconsistent combinations into
:class:`~repro.exceptions.ServiceConfigError` (exit code 2) before any
socket is bound or dataset built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ServiceConfigError

#: Datasets the registry knows how to build, in CLI spelling.
KNOWN_DATASETS: tuple[str, ...] = ("running", "yahoo", "imdb")


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of the mapping service, validated as a whole.

    The defaults suit the running-example demo: a handful of worker
    threads, a small bounded queue (backpressure kicks in early rather
    than letting latency pile up), and generous-but-finite session
    lifetimes.
    """

    #: Bind address of the HTTP listener.
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (tests and the load bench use this).
    port: int = 8384
    #: Datasets preloaded into the registry at startup; sessions may
    #: only be created against one of these.
    datasets: tuple[str, ...] = ("running",)
    #: Movie count for the generated datasets (ignored by ``running``).
    scale: int = 150
    #: Hard cap on live sessions across all users.
    max_sessions: int = 64
    #: Idle seconds after which a session is evicted (TTL).
    session_ttl_s: float = 900.0
    #: Worker threads executing searches/prunes off the request thread.
    workers: int = 4
    #: Bounded work-queue depth; a full queue answers 429.
    queue_size: int = 32
    #: Per-request deadline for queued work (seconds).
    request_timeout_s: float = 10.0
    #: Entries in the cross-session LocateSample LRU (0 disables it).
    location_cache_size: int = 4096
    #: ``Retry-After`` hint (seconds) sent with 429 responses.
    retry_after_s: float = 1.0
    #: Default spreadsheet columns for sessions that do not name any.
    default_columns: tuple[str, ...] = field(
        default=("Name", "Director")
    )
    #: Directory for the crash-safe session journal (``None`` disables
    #: journaling; ``mweaver serve --journal-dir`` sets it).  On startup
    #: the journal is replayed and every live session restored.
    journal_dir: str | None = None
    #: Anytime-search budget per cell input (seconds).  ``None`` derives
    #: 80% of ``request_timeout_s``, so a slow search degrades into a
    #: best-effort 200 before the request deadline turns it into a 504.
    #: Set to 0 to disable the budget entirely (searches run to
    #: completion or the request deadline, whichever comes first).
    search_deadline_s: float | None = None
    #: Worker isolation mode: ``"thread"`` runs searches on an
    #: in-process pool (the default, behavior-identical to previous
    #: releases); ``"process"`` runs each search in a supervised worker
    #: process that can be SIGKILLed when the cooperative deadline is
    #: ignored (``mweaver serve --isolation=process``).
    isolation: str = "thread"
    #: Worker processes in process mode; 0 borrows ``workers``.
    procs: int = 0
    #: Hard-kill grace factor: a process-mode job is SIGKILLed after
    #: ``effective_search_deadline_s * kill_grace`` (the cooperative
    #: budget gets first shot, the SIGKILL is the backstop).
    kill_grace: float = 2.0
    #: Per-worker address-space ceiling in MiB, enforced inside the
    #: worker via ``setrlimit(RLIMIT_AS)`` (0 disables).
    worker_memory_mb: int = 0
    #: Recycle a worker after serving this many requests (0 disables).
    recycle_requests: int = 0
    #: Recycle a worker after this much RSS growth in MiB (0 disables).
    recycle_growth_mb: int = 0
    #: Seconds graceful drain waits for in-flight work on SIGTERM.
    drain_timeout_s: float = 10.0
    #: Admission control: shed a request with 503 + ``Retry-After`` when
    #: its estimated queue wait exceeds ``shed_factor *
    #: request_timeout_s`` — fail fast instead of timing out late.
    #: 0 disables shedding (queue-full 429s still apply).
    shed_factor: float = 1.0
    #: SLO: latency objective bound in seconds (requests slower than
    #: this count against the latency error budget).
    slo_latency_s: float = 0.25
    #: SLO: promised fraction of requests that do not 5xx.
    slo_availability_target: float = 0.99
    #: SLO: promised fraction of requests within ``slo_latency_s``.
    slo_latency_target: float = 0.95
    #: Sampling-profiler frequency in Hz; 0 disables the profiler (the
    #: library default — ``mweaver serve`` turns it on at ~97 Hz).
    profile_hz: float = 0.0
    #: Flight-recorder ring capacity (requests kept for /debug); 0
    #: disables the recorder and the /debug/requests endpoints.
    recorder_capacity: int = 128
    #: Requests slower than this are auto-pinned by the flight recorder
    #: as "slow".  ``None`` derives the SLO latency bound.
    slow_request_s: float | None = None
    #: Shard mode (``mweaver shard``): expose the cluster-internal
    #: surface — ``POST /admin/sessions/{id}/restore`` (coordinator
    #: ships a session's journaled grid here on failover) and
    #: ``GET /locate`` (one partition of a scatter-gather LocateSample).
    #: Off by default: a standalone ``mweaver serve`` should not accept
    #: session overwrites from the network.
    shard_mode: bool = False

    @property
    def effective_search_deadline_s(self) -> float:
        """The search budget actually applied (0 = no budget)."""
        if self.search_deadline_s is None:
            return 0.8 * self.request_timeout_s
        return self.search_deadline_s

    @property
    def effective_slow_request_s(self) -> float:
        """The flight recorder's slow-request pin threshold."""
        if self.slow_request_s is None:
            return self.slo_latency_s
        return self.slow_request_s

    @property
    def effective_procs(self) -> int:
        """Worker-process count in process mode."""
        return self.procs or self.workers

    @property
    def effective_kill_after_s(self) -> float:
        """Wall-clock budget before a process-mode job is SIGKILLed."""
        base = self.effective_search_deadline_s or self.request_timeout_s
        return base * self.kill_grace

    def validate(self) -> "ServiceConfig":
        """Raise :class:`ServiceConfigError` on any bad knob; return self."""
        if not self.datasets:
            raise ServiceConfigError("at least one dataset must be preloaded")
        for dataset in self.datasets:
            if dataset not in KNOWN_DATASETS:
                raise ServiceConfigError(
                    f"unknown dataset {dataset!r} "
                    f"(expected one of {', '.join(KNOWN_DATASETS)})"
                )
        if len(set(self.datasets)) != len(self.datasets):
            raise ServiceConfigError("datasets must not repeat")
        if self.port < 0 or self.port > 65535:
            raise ServiceConfigError(f"port out of range: {self.port}")
        if self.scale <= 0:
            raise ServiceConfigError("scale must be positive")
        if self.max_sessions <= 0:
            raise ServiceConfigError("max_sessions must be positive")
        if self.workers <= 0:
            raise ServiceConfigError("workers must be positive")
        if self.queue_size <= 0:
            raise ServiceConfigError("queue_size must be positive")
        if self.session_ttl_s <= 0:
            raise ServiceConfigError("session_ttl_s must be positive")
        if self.request_timeout_s <= 0:
            raise ServiceConfigError("request_timeout_s must be positive")
        if self.session_ttl_s <= self.request_timeout_s:
            raise ServiceConfigError(
                "session_ttl_s must exceed request_timeout_s — otherwise "
                "a session can be evicted while its own request runs"
            )
        if self.location_cache_size < 0:
            raise ServiceConfigError("location_cache_size must be >= 0")
        if self.retry_after_s <= 0:
            raise ServiceConfigError("retry_after_s must be positive")
        if not self.default_columns:
            raise ServiceConfigError("default_columns must not be empty")
        if self.search_deadline_s is not None:
            if self.search_deadline_s < 0:
                raise ServiceConfigError(
                    "search_deadline_s must be >= 0 (0 disables the budget)"
                )
            if self.search_deadline_s >= self.request_timeout_s:
                raise ServiceConfigError(
                    "search_deadline_s must be below request_timeout_s — "
                    "a budget that outlives the request can never degrade "
                    "before the 504"
                )
        if self.isolation not in ("thread", "process"):
            raise ServiceConfigError(
                f"unknown isolation mode {self.isolation!r} "
                "(expected thread or process)"
            )
        if self.procs < 0:
            raise ServiceConfigError("procs must be >= 0 (0 uses workers)")
        if self.kill_grace < 1.0:
            raise ServiceConfigError(
                "kill_grace must be >= 1.0 — killing before the "
                "cooperative deadline would defeat anytime degradation"
            )
        if self.worker_memory_mb < 0:
            raise ServiceConfigError("worker_memory_mb must be >= 0")
        if self.recycle_requests < 0:
            raise ServiceConfigError("recycle_requests must be >= 0")
        if self.recycle_growth_mb < 0:
            raise ServiceConfigError("recycle_growth_mb must be >= 0")
        if self.drain_timeout_s < 0:
            raise ServiceConfigError("drain_timeout_s must be >= 0")
        if self.shed_factor < 0:
            raise ServiceConfigError(
                "shed_factor must be >= 0 (0 disables shedding)"
            )
        if self.slo_latency_s <= 0:
            raise ServiceConfigError("slo_latency_s must be positive")
        for name in ("slo_availability_target", "slo_latency_target"):
            target = getattr(self, name)
            if not 0.0 < target < 1.0:
                raise ServiceConfigError(
                    f"{name} must be in (0, 1), got {target}"
                )
        if self.profile_hz < 0:
            raise ServiceConfigError(
                "profile_hz must be >= 0 (0 disables the profiler)"
            )
        if self.recorder_capacity < 0:
            raise ServiceConfigError(
                "recorder_capacity must be >= 0 (0 disables the recorder)"
            )
        if self.slow_request_s is not None and self.slow_request_s <= 0:
            raise ServiceConfigError("slow_request_s must be positive")
        return self
