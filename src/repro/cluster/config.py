"""Deployment knobs for the cluster coordinator (:mod:`repro.cluster`).

Mirrors :class:`repro.service.config.ServiceConfig` in shape: one
frozen dataclass, built by ``mweaver cluster`` flags, validated as a
whole into :class:`~repro.exceptions.ServiceConfigError` before any
socket is bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ServiceConfigError
from repro.service.config import KNOWN_DATASETS


@dataclass(frozen=True)
class ClusterConfig:
    """Every tunable of the coordinator, validated as a whole."""

    #: Bind address of the coordinator's HTTP listener.
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (tests and the load bench use this).
    port: int = 8380
    #: Shard backends as ``host:port`` addresses (``mweaver shard``
    #: processes).  Order is only cosmetic — placement comes from the
    #: consistent-hash ring.
    shards: tuple[str, ...] = ()
    #: Replica-set size R: each session lives on this many shards
    #: (primary + R-1 failover targets).  Clamped to the shard count.
    replication: int = 2
    #: Virtual nodes per shard on the hash ring.
    vnodes: int = 64
    #: Datasets sessions may be created against (the shards must serve
    #: the same set).
    datasets: tuple[str, ...] = ("running",)
    #: Default spreadsheet columns for sessions that do not name any.
    default_columns: tuple[str, ...] = field(default=("Name", "Director"))
    #: Hard cap on live sessions across the cluster.
    max_sessions: int = 256
    #: Seconds between health-probe rounds against each shard.
    heartbeat_interval_s: float = 0.5
    #: Consecutive probe/call failures that open a shard's breaker.
    failure_threshold: int = 3
    #: Seconds an open shard breaker waits before allowing a probe.
    breaker_reset_s: float = 2.0
    #: Consecutive healthy probes a tripped shard must answer before it
    #: is re-admitted to routing (the sustained-healthy window that
    #: keeps a flapping shard from oscillating in and out every round).
    readmit_threshold: int = 2
    #: Per-shard-call timeout (seconds) for proxied requests.
    request_timeout_s: float = 10.0
    #: Scatter-gather hedging: if a LocateSample partition has not
    #: answered after this long, fire the same partition at the next
    #: replica and take whichever answers first.  0 disables hedging.
    hedge_delay_s: float = 0.15
    #: Directory for the coordinator's crash-safe session journal
    #: (``None`` disables journaling — and with it failover replay).
    journal_dir: str | None = None
    #: Seconds between replication sweeps warming secondary shards.
    replicate_interval_s: float = 0.2
    #: ``Retry-After`` hint (seconds) for shard_down/drain refusals.
    retry_after_s: float = 1.0
    #: Seconds graceful drain waits for in-flight requests on SIGTERM.
    drain_timeout_s: float = 10.0
    #: Seconds between anti-entropy repair rounds (digest comparison
    #: across each session's replica set; 0 disables the loop).
    repair_interval_s: float = 2.0
    #: Cooperative work budget per repair round (digest fetches cost 1,
    #: reseats cost :data:`REPAIR_RESEAT_COST`); 0 = unbudgeted.  The
    #: budget is what keeps repair from starving live traffic: a round
    #: that runs out resumes where it stopped next round.
    repair_max_work: int = 256
    #: Seconds between rebalancer sweeps after a membership change.
    rebalance_interval_s: float = 0.5
    #: Sessions reseated per rebalancer sweep (the bounded rate:
    #: ``rebalance_batch / rebalance_interval_s`` sessions per second).
    rebalance_batch: int = 8

    def validate(self) -> "ClusterConfig":
        """Raise :class:`ServiceConfigError` on any bad knob; return self."""
        if not self.shards:
            raise ServiceConfigError(
                "cluster needs at least one shard address"
            )
        if len(set(self.shards)) != len(self.shards):
            raise ServiceConfigError("shard addresses must not repeat")
        for shard in self.shards:
            host, _, port = shard.rpartition(":")
            if not host or not port.isdigit():
                raise ServiceConfigError(
                    f"shard address {shard!r} is not host:port"
                )
        if self.port < 0 or self.port > 65535:
            raise ServiceConfigError(f"port out of range: {self.port}")
        if self.replication < 1:
            raise ServiceConfigError("replication must be >= 1")
        if self.vnodes < 1:
            raise ServiceConfigError("vnodes must be >= 1")
        if not self.datasets:
            raise ServiceConfigError("at least one dataset must be served")
        for dataset in self.datasets:
            if dataset not in KNOWN_DATASETS:
                raise ServiceConfigError(
                    f"unknown dataset {dataset!r} "
                    f"(expected one of {', '.join(KNOWN_DATASETS)})"
                )
        if len(set(self.datasets)) != len(self.datasets):
            raise ServiceConfigError("datasets must not repeat")
        if not self.default_columns:
            raise ServiceConfigError("default_columns must not be empty")
        if self.max_sessions <= 0:
            raise ServiceConfigError("max_sessions must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ServiceConfigError("heartbeat_interval_s must be positive")
        if self.failure_threshold < 1:
            raise ServiceConfigError("failure_threshold must be >= 1")
        if self.breaker_reset_s <= 0:
            raise ServiceConfigError("breaker_reset_s must be positive")
        if self.request_timeout_s <= 0:
            raise ServiceConfigError("request_timeout_s must be positive")
        if self.hedge_delay_s < 0:
            raise ServiceConfigError(
                "hedge_delay_s must be >= 0 (0 disables hedging)"
            )
        if self.replicate_interval_s <= 0:
            raise ServiceConfigError("replicate_interval_s must be positive")
        if self.retry_after_s <= 0:
            raise ServiceConfigError("retry_after_s must be positive")
        if self.drain_timeout_s < 0:
            raise ServiceConfigError("drain_timeout_s must be >= 0")
        if self.readmit_threshold < 1:
            raise ServiceConfigError("readmit_threshold must be >= 1")
        if self.repair_interval_s < 0:
            raise ServiceConfigError(
                "repair_interval_s must be >= 0 (0 disables repair)"
            )
        if self.repair_max_work < 0:
            raise ServiceConfigError(
                "repair_max_work must be >= 0 (0 = unbudgeted)"
            )
        if self.rebalance_interval_s <= 0:
            raise ServiceConfigError("rebalance_interval_s must be positive")
        if self.rebalance_batch < 1:
            raise ServiceConfigError("rebalance_batch must be >= 1")
        return self
