"""Tests for the keyword-search façade — and its contrast with mapping
search (the Section 2 distinction)."""

import pytest

from repro.core.tpw import TPWEngine
from repro.keyword_search import KeywordSearchEngine
from repro.text.errors import CaseTokenModel

MODEL = CaseTokenModel()


@pytest.fixture()
def engine(running_db):
    return KeywordSearchEngine(running_db)


class TestKeywordSearch:
    def test_single_keyword(self, running_db, engine):
        hits = engine.search(["Titanic"])
        assert hits
        assert all(hit.n_joins == 0 for hit in hits)
        relation, row = hits[0].rows(running_db)[0]
        assert relation == "movie"
        assert row["title"] == "Titanic"

    def test_two_keywords_joined(self, running_db, engine):
        hits = engine.search(["Avatar", "Cameron"])
        assert hits
        for hit in hits:
            relations = [relation for relation, _row in hit.rows(running_db)]
            assert "movie" in relations and "person" in relations

    def test_every_keyword_contained(self, running_db, engine):
        hits = engine.search(["Big Fish", "Burton"])
        for hit in hits:
            assert hit.tuple_path.is_valid_for(
                running_db, dict(enumerate(hit.keywords)), MODEL
            )

    def test_ranking_by_joins(self, running_db, engine):
        # "Ed Wood" twice: zero-join answers (both keywords in one
        # tuple) must rank before joined ones.
        hits = engine.search(["Ed Wood", "Ed Wood"])
        joins = [hit.n_joins for hit in hits]
        assert joins == sorted(joins)
        assert joins[0] == 0

    def test_no_answers(self, engine):
        assert engine.search(["completely absent keyword"]) == []

    def test_limit(self, engine):
        unbounded = engine.search(["Ed Wood"])
        limited = engine.search(["Ed Wood"], limit=1)
        assert len(limited) == min(1, len(unbounded))

    def test_describe(self, running_db, engine):
        hit = engine.search(["Avatar", "Cameron"])[0]
        text = hit.describe(running_db)
        assert "answer for" in text
        assert "movie(" in text


class TestSectionTwoDistinction:
    """Keyword search returns tuples; mapping search returns mappings."""

    def test_hits_are_instance_level(self, running_db, engine):
        # Cameron directed two movies: keyword 'Cameron' + 'The'… use a
        # clean case: keyword search for (Cameron) joined to each movie
        # gives one hit per supporting tuple tree.
        hits = engine.search(["James Cameron"])
        assert len(hits) >= 1  # tuples, one per occurrence

    def test_mapping_search_deduplicates_structure(self, running_db):
        # TPW groups all supporting tuple paths under ONE mapping.
        result = TPWEngine(running_db).search(("Titanic", "James Cameron"))
        # Titanic: directed & written by Cameron → 2 mappings, each
        # with instance support attached.
        assert result.n_candidates == 2
        for candidate in result.candidates:
            assert candidate.support >= 1

    def test_same_support_different_output(self, running_db, engine):
        """For the same query, the keyword hits are exactly the tuple
        paths backing the mapping candidates."""
        keywords = ("Avatar", "James Cameron")
        hits = engine.search(keywords)
        result = TPWEngine(running_db).search(keywords)
        mapping_paths = {
            path.signature()
            for candidate in result.candidates
            for path in candidate.tuple_paths
        }
        hit_paths = {hit.tuple_path.signature() for hit in hits}
        assert hit_paths == mapping_paths
