"""Tests for the subprocess harness (:mod:`repro.cluster.spawn`).

Most of spawn.py is exercised implicitly by the chaos suite; these
cover the pieces with subtle failure modes — the start-failure cleanup
path (no leaked reader thread or stdout fd) and port pinning for
supervisor respawns.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import ServerProcess

pytestmark = pytest.mark.slow  # spawns real python subprocesses


class TestStartFailureCleanup:
    def test_early_exit_raises_and_releases_reader_and_pipe(self):
        # `python -m repro <garbage>` exits immediately with argparse's
        # code 2, never printing a listening line.
        proc = ServerProcess(["definitely-not-a-subcommand"], name="bad")
        before = threading.active_count()
        with pytest.raises(RuntimeError, match="exited with code"):
            proc.start(startup_timeout_s=30.0)
        assert proc.process is not None
        assert proc.process.poll() is not None
        # The reader thread was joined, not leaked...
        assert proc._reader is None
        assert threading.active_count() == before
        # ...and the child's stdout pipe is closed (no fd leak).
        assert proc.process.stdout.closed

    def test_timeout_raises_and_releases_reader_and_pipe(self):
        # `mweaver top` keeps polling a dead URL without ever printing
        # a listening line: the startup timeout path, deterministically.
        proc = ServerProcess(
            ["top", "--url", "http://127.0.0.1:9", "--interval", "0.2"],
            name="silent",
        )
        with pytest.raises(RuntimeError, match="did not report"):
            proc.start(startup_timeout_s=1.0)
        assert proc.process is not None
        assert proc.process.poll() is not None  # killed by cleanup
        assert proc._reader is None
        assert proc.process.stdout.closed

    def test_failed_start_can_be_retried(self):
        # The supervisor retries starts in a loop; a failed instance
        # must leave no state that poisons the next attempt.
        proc = ServerProcess(["definitely-not-a-subcommand"], name="bad")
        for _ in range(3):
            with pytest.raises(RuntimeError):
                proc.start(startup_timeout_s=30.0)
            assert proc._reader is None


class TestPinnedArgs:
    def test_pinned_args_rewrites_the_bound_port(self):
        proc = ServerProcess(
            ["shard", "--host", "127.0.0.1", "--port", "0"], name="s"
        )
        proc.port = 9137  # as discovered from the listening line
        assert proc.pinned_args() == [
            "shard", "--host", "127.0.0.1", "--port", "9137"
        ]

    def test_pinned_args_without_a_bound_port_is_verbatim(self):
        proc = ServerProcess(["shard", "--port", "0"], name="s")
        assert proc.pinned_args() == ["shard", "--port", "0"]
        assert proc.pinned_args() is not proc.args  # a copy, not a view
