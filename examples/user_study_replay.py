"""Scenario: replaying the Section 6.2 user study.

Run with::

    python examples/user_study_replay.py

Runs the simulated ten-user panel (two experts, eight non-technical
users) through the mapping task with all three tool models and prints
the Figure 10 panels plus the satisfaction survey — the study that
produced the paper's "1/5th the time" headline.
"""

from repro.datasets import build_imdb, build_yahoo_movies
from repro.datasets.workload import user_study_task_imdb, user_study_task_yahoo
from repro.study import run_user_study, satisfaction_scores


def print_panel(study, dataset: str, metric: str, unit: str) -> None:
    panel = study.metric_panel(dataset, metric)
    users = [user for user, _value in panel["MWeaver"]]
    print(f"--- {metric} on {dataset} ({unit}) ---")
    print(f"{'tool':12s} " + " ".join(f"{user:>6s}" for user in users))
    for tool, series in panel.items():
        cells = " ".join(f"{value:6.0f}" for _user, value in series)
        print(f"{tool:12s} {cells}")
    print()


def main() -> None:
    yahoo = build_yahoo_movies(n_movies=150, seed=7)
    imdb = build_imdb(n_movies=150, seed=11)
    study = run_user_study(
        {
            "yahoo-movies": (yahoo, user_study_task_yahoo()),
            "imdb": (imdb, user_study_task_imdb()),
        }
    )

    for dataset in ("yahoo-movies", "imdb"):
        print_panel(study, dataset, "seconds", "s")
        print_panel(study, dataset, "keystrokes", "count")
        print_panel(study, dataset, "clicks", "count")

    print("headline ratios (paper: ~5x vs InfoSphere, ~4x vs Eirene):")
    print(f"  InfoSphere time / MWeaver time = "
          f"{study.time_ratio('MWeaver', 'InfoSphere'):.2f}")
    print(f"  Eirene time     / MWeaver time = "
          f"{study.time_ratio('MWeaver', 'Eirene'):.2f}")

    scores = satisfaction_scores(study)
    print("\nsatisfaction survey (paper: 4.7 / 3.45 / 2.7):")
    for tool, score in scores.items():
        print(f"  {tool:12s} {score:.2f}")


if __name__ == "__main__":
    main()
