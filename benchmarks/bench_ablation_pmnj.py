"""Ablation — the PMNJ join bound (Section 4.5.2).

PMNJ restricts how far apart two projected attributes may be joined in
a *pairwise* mapping path.  The paper fixes PMNJ = 2 and argues longer
unprojected chains "are very rare" in real mappings.  This sweep shows
the cost of relaxing it: candidates and search time as PMNJ grows from
1 to 3 on the user-study task.

Expected shape: PMNJ = 1 cannot express the goal (junction tables force
two joins between entities); PMNJ = 2 finds it at interactive cost;
PMNJ = 3 finds a superset of candidates at measurably higher cost.
"""

from statistics import mean

from repro.bench.harness import run_tpw_search
from repro.bench.reporting import format_table, write_result
from repro.config import TPWConfig
from repro.datasets.workload import user_study_task_yahoo

REPEATS = 3


def test_ablation_pmnj(benchmark, yahoo_db):
    task = user_study_task_yahoo()
    rows = []
    by_pmnj = {}
    for pmnj in (1, 2, 3):
        config = TPWConfig(pmnj=pmnj)
        times = []
        candidates = []
        pairwise = []
        for repeat in range(REPEATS):
            cell = run_tpw_search(yahoo_db, task, seed=repeat, config=config)
            times.append(cell.seconds * 1000)
            candidates.append(cell.result.n_candidates)
            pairwise.append(cell.result.stats.pairwise_mapping_paths)
        by_pmnj[pmnj] = (mean(times), mean(candidates), mean(pairwise))
        rows.append(
            [pmnj, f"{mean(times):.2f}", f"{mean(candidates):.2f}",
             f"{mean(pairwise):.2f}"]
        )

    table = format_table(
        ["PMNJ", "search (ms)", "candidates", "pairwise MPs"],
        rows,
        title="Ablation: PMNJ sweep on the user-study task (Yahoo)",
    )
    write_result("ablation_pmnj.txt", table)

    # PMNJ=1 cannot reach person through a junction: no candidates.
    assert by_pmnj[1][1] == 0
    # PMNJ=2 finds the goal.
    assert by_pmnj[2][1] >= 1
    # PMNJ=3 explores at least as many pairwise mapping paths.
    assert by_pmnj[3][2] >= by_pmnj[2][2]

    benchmark(
        lambda: run_tpw_search(yahoo_db, task, seed=1, config=TPWConfig(pmnj=2))
    )
