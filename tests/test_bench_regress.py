"""Tests for the benchmark regression observatory (``repro.bench.regress``)."""

import json

import pytest

from repro.bench import regress
from repro.bench.regress import (
    Comparison,
    Threshold,
    compare_records,
    gate_exit_code,
    render_markdown,
    worst_status,
)
from repro.bench.resources import ResourceUsage, measure, measure_min


def make_record(workloads, calibration_s=0.02):
    """A minimal bench record with the given {name: wall_s} workloads."""
    return {
        "kind": regress.RECORD_KIND,
        "name": "smoke",
        "calibration_s": calibration_s,
        "meta": {"scale": 60, "reps": 3},
        "workloads": {
            name: {
                "wall_s": wall,
                "cpu_s": wall,
                "py_peak_bytes": 1_000_000,
                "rss_peak_bytes": 50_000_000,
            }
            for name, wall in workloads.items()
        },
    }


class TestCompareRecords:
    def test_identical_records_are_ok(self):
        record = make_record({"a": 0.010, "b": 0.020})
        comparisons = compare_records(record, record)
        assert comparisons and all(c.status == "ok" for c in comparisons)
        assert gate_exit_code(comparisons) == 0

    def test_injected_2x_slowdown_fails_the_gate(self):
        baseline = make_record({"a": 0.010})
        slowed = make_record({"a": 0.025})
        comparisons = compare_records(baseline, slowed)
        wall = next(c for c in comparisons if c.metric == "wall_s")
        assert wall.status == "fail"
        assert gate_exit_code(comparisons) == 1

    def test_moderate_drift_warns_without_failing(self):
        baseline = make_record({"a": 0.010})
        drifted = make_record({"a": 0.0135})  # +35%: past warn, under 2x
        comparisons = compare_records(baseline, drifted)
        wall = next(c for c in comparisons if c.metric == "wall_s")
        assert wall.status == "warn"
        assert gate_exit_code(comparisons) == 0

    def test_missing_workload_fails_the_gate(self):
        baseline = make_record({"a": 0.010, "b": 0.010})
        current = make_record({"a": 0.010})
        comparisons = compare_records(baseline, current)
        missing = [c for c in comparisons if c.status == "missing"]
        assert [c.workload for c in missing] == ["b"]
        assert gate_exit_code(comparisons) == 1

    def test_new_workload_is_informational(self):
        baseline = make_record({"a": 0.010})
        current = make_record({"a": 0.010, "b": 0.010})
        comparisons = compare_records(baseline, current)
        new = [c for c in comparisons if c.status == "new"]
        assert [c.workload for c in new] == ["b"]
        assert gate_exit_code(comparisons) == 0

    def test_calibration_ratio_rescales_baseline(self):
        # The current machine is 2x slower per the microbenchmark, so a
        # 2x wall increase is expected and must not trip the gate.
        baseline = make_record({"a": 0.010}, calibration_s=0.010)
        current = make_record({"a": 0.020}, calibration_s=0.020)
        comparisons = compare_records(baseline, current)
        wall = next(c for c in comparisons if c.metric == "wall_s")
        assert wall.adjusted_baseline == pytest.approx(0.020)
        assert wall.ratio == pytest.approx(1.0)
        assert wall.status == "ok"

    def test_noise_floor_demotes_tiny_workloads(self):
        # 1 ms -> 2.5 ms is >2x relative but under both absolute floors:
        # warn, not fail.
        baseline = make_record({"a": 0.001})
        current = make_record({"a": 0.0025})
        comparisons = compare_records(baseline, current)
        wall = next(c for c in comparisons if c.metric == "wall_s")
        assert wall.status == "warn"
        assert gate_exit_code(comparisons) == 0

    def test_memory_regression_is_compared_uncalibrated(self):
        baseline = make_record({"a": 0.010}, calibration_s=0.010)
        current = make_record({"a": 0.010}, calibration_s=0.030)
        current["workloads"]["a"]["py_peak_bytes"] = 2_500_000
        comparisons = compare_records(baseline, current)
        memory = next(c for c in comparisons if c.metric == "py_peak_bytes")
        assert memory.ratio == pytest.approx(2.5)
        assert memory.status == "fail"

    def test_custom_thresholds(self):
        baseline = make_record({"a": 0.010})
        current = make_record({"a": 0.012})
        strict = Threshold(warn=0.05, fail=0.10)
        comparisons = compare_records(baseline, current, wall=strict)
        wall = next(c for c in comparisons if c.metric == "wall_s")
        assert wall.status == "fail"


class TestVerdicts:
    def test_worst_status_ordering(self):
        def comp(status):
            return Comparison("w", "wall_s", 1.0, 1.0, 1.0, 1.0, status)

        assert worst_status([comp("ok"), comp("warn")]) == "warn"
        assert worst_status([comp("warn"), comp("fail")]) == "fail"
        assert worst_status([]) == "ok"

    def test_render_markdown_verdicts(self):
        ok = make_record({"a": 0.010})
        assert "Verdict: OK" in render_markdown(compare_records(ok, ok))
        failed = compare_records(ok, make_record({"a": 0.025}))
        report = render_markdown(failed, calibration_ratio=1.0)
        assert "Verdict: FAIL" in report
        assert "| a | wall_s |" in report
        assert "calibration ratio" in report

    def test_describe_line(self):
        line = Comparison("a", "wall_s", 0.01, 0.025, 0.01, 2.5, "fail")
        assert line.describe() == "a wall_s: 0.01 -> 0.025 (2.50x) FAIL"


class TestLoadRecord:
    def test_round_trip(self, tmp_path):
        record = make_record({"a": 0.010})
        path = tmp_path / "rec.json"
        path.write_text(json.dumps(record), encoding="utf-8")
        assert regress.load_record(path) == record

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="bench-record"):
            regress.load_record(path)


class TestMainGate:
    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(make_record({"a": 0.010})))
        current.write_text(json.dumps(make_record({"a": 0.025})))
        code = regress.main([
            "--check",
            "--baseline", str(baseline),
            "--current", str(current),
            "--markdown", str(tmp_path / "report.md"),
        ])
        assert code == 1
        assert "FAIL" in (tmp_path / "report.md").read_text()

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_record({"a": 0.010})))
        code = regress.main([
            "--check",
            "--baseline", str(baseline),
            "--current", str(baseline),
        ])
        assert code == 0

    def test_missing_baseline_errors(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record({"a": 0.010})))
        code = regress.main([
            "--check",
            "--baseline", str(tmp_path / "absent.json"),
            "--current", str(current),
        ])
        assert code == 1
        assert "no baseline" in capsys.readouterr().err


class TestResources:
    def test_measure_accounts_wall_and_cpu(self):
        usage = measure(lambda: sum(range(200_000)))
        assert usage.wall_s > 0
        assert usage.cpu_s > 0
        assert usage.value == sum(range(200_000))
        assert usage.py_peak_bytes == 0  # tracing off by default

    def test_measure_traces_python_peak(self):
        usage = measure(lambda: [bytearray(64) for _ in range(2_000)],
                        trace_memory=True)
        assert usage.py_peak_bytes > 100_000

    def test_to_dict_drops_the_value(self):
        usage = measure(lambda: "payload")
        payload = usage.to_dict()
        assert set(payload) == {
            "wall_s", "cpu_s", "py_peak_bytes", "rss_peak_bytes"
        }

    def test_measure_min_returns_timing_and_memory(self):
        calls = 0

        def fn():
            nonlocal calls
            calls += 1
            return list(range(10_000))

        timing, mem = measure_min(fn, reps=3)
        assert calls == 4  # 3 timing reps + 1 memory rep
        assert timing.py_peak_bytes == 0
        assert mem.py_peak_bytes > 0

    def test_measure_min_rejects_zero_reps(self):
        with pytest.raises(ValueError, match="reps"):
            measure_min(lambda: None, reps=0)


class TestCalibration:
    def test_calibrate_is_positive_and_repeatable(self):
        first = regress.calibrate(reps=2)
        assert first > 0
