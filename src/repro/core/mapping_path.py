"""Mapping paths (Definition 4): relation paths plus projection maps.

A mapping path is the paper's schema-mapping representation: an
undirected tree of relation occurrences joined via foreign keys (the
*relation path*, Definition 3) augmented with a *projection map* from
target-column indexes to source attributes on the tree.  Every terminal
vertex must project at least one target column, otherwise it would be a
redundant join.

Target columns are indexed **0-based** here (the paper writes 1-based
``[m]``).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.canonical import Signature, canonical_signature
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import ContainsPredicate, JoinTree, Projection
from repro.relational.schema import DatabaseSchema
from repro.relational.sql import render_join_tree_sql
from repro.text.errors import ErrorModel


class MappingPath:
    """A project-join schema mapping, represented as an annotated tree.

    Parameters
    ----------
    tree:
        The relation path.
    projections:
        Target-column index → ``(vertex, attribute)``.  Keys form the
        set ``N ⊆ [m]`` of Definition 4; ``len(projections)`` is the
        mapping path's *size*.
    """

    __slots__ = ("tree", "projections", "_signature")

    def __init__(
        self, tree: JoinTree, projections: Mapping[int, tuple[int, str]]
    ) -> None:
        if not projections:
            raise QueryError("a mapping path must project at least one column")
        self.tree = tree
        self.projections: dict[int, tuple[int, str]] = dict(
            sorted(projections.items())
        )
        for key, (vertex, _attribute) in self.projections.items():
            if key < 0:
                raise QueryError(f"negative target column index {key}")
            if vertex not in tree.vertices:
                raise QueryError(f"projection of column {key} uses unknown vertex")
        projected_vertices = {vertex for vertex, _ in self.projections.values()}
        for terminal in tree.terminal_vertices():
            if tree.degree(terminal) == 0:
                continue  # single-vertex tree: nothing to check
            if terminal not in projected_vertices:
                raise QueryError(
                    f"terminal vertex {terminal} projects nothing (redundant join)"
                )
        self._signature: Signature | None = None

    # ------------------------------------------------------------------
    # Size and shape
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of target columns projected (``|N|``)."""
        return len(self.projections)

    @property
    def keys(self) -> frozenset[int]:
        """The projected target-column indexes."""
        return frozenset(self.projections)

    @property
    def n_joins(self) -> int:
        """Number of joins in the relation path."""
        return self.tree.n_joins

    def is_pairwise(self) -> bool:
        """Whether this is a size-two (pairwise) mapping path."""
        return self.size == 2

    def is_complete(self, target_size: int) -> bool:
        """Whether every column of a size-``target_size`` target is mapped."""
        return self.keys == frozenset(range(target_size))

    def attribute_of(self, key: int) -> tuple[str, str]:
        """``(relation, attribute)`` that target column ``key`` maps to."""
        vertex, attribute = self.projections[key]
        return (self.tree.relation_of(vertex), attribute)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def signature(self) -> Signature:
        """Canonical form, invariant under vertex renaming (cached)."""
        if self._signature is None:
            by_vertex: dict[int, list[tuple[int, str]]] = {}
            for key, (vertex, attribute) in self.projections.items():
                by_vertex.setdefault(vertex, []).append((key, attribute))

            def label(vertex: int) -> tuple:
                return (
                    self.tree.relation_of(vertex),
                    tuple(sorted(by_vertex.get(vertex, ()))),
                )

            self._signature = canonical_signature(self.tree, label)
        return self._signature

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingPath):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def predicates_for(
        self, samples: Mapping[int, str], model: ErrorModel
    ) -> list[ContainsPredicate]:
        """Containment predicates binding ``samples`` to this mapping.

        ``samples`` maps target-column indexes to sample strings; only
        columns this mapping projects contribute predicates.
        """
        predicates = []
        for key, sample in sorted(samples.items()):
            if key in self.projections:
                vertex, attribute = self.projections[key]
                predicates.append(ContainsPredicate(vertex, attribute, sample, model))
        return predicates

    def to_sql(
        self,
        schema: DatabaseSchema,
        *,
        column_names: list[str] | None = None,
    ) -> str:
        """The SQL query implementing this schema mapping."""
        projections = [
            Projection(key, vertex, attribute)
            for key, (vertex, attribute) in self.projections.items()
        ]
        return render_join_tree_sql(
            schema, self.tree, projections, column_names=column_names
        )

    def execute(self, db: Database, *, limit: int = 0) -> list[tuple[object, ...]]:
        """Materialise the target instance ``M(D_S)`` (optionally limited).

        Output columns are ordered by target-column index.  Duplicate
        tuples are preserved (the mapping is a plain project-join).
        """
        from repro.relational.executor import iterate_assignments, project_assignment

        ordered = sorted(self.projections.items())
        projection_pairs = [pair for _key, pair in ordered]
        rows: list[tuple[object, ...]] = []
        for assignment in iterate_assignments(db, self.tree):
            rows.append(
                project_assignment(db, self.tree, assignment, projection_pairs)
            )
            if limit and len(rows) >= limit:
                break
        return rows

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-liner: tree plus projection map."""
        projections = ", ".join(
            f"{key}->{self.tree.relation_of(vertex)}.{attribute}"
            for key, (vertex, attribute) in self.projections.items()
        )
        return f"[{self.tree.describe()}] {{{projections}}}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MappingPath {self.describe()}>"


def single_relation_mapping(
    relation: str, projections: Mapping[int, str]
) -> MappingPath:
    """A zero-join mapping projecting attributes of one relation.

    ``projections`` maps target-column indexes to attribute names.
    """
    tree = JoinTree({0: relation})
    return MappingPath(
        tree, {key: (0, attribute) for key, attribute in projections.items()}
    )
