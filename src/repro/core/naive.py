"""The naive baseline of Section 6.3.

The paper compares TPW against "a naive algorithm which enumerated all
the complete mapping paths (no matter valid or not) in the same way as
the equivalent candidate networks are generated in DISCOVER, and
validated them by executing an approximate search query translated from
each of them".

We enumerate that family by running the *schema-level* weave (merge on
relation names, no instance information) over the pairwise mapping
paths, then validate every enumerated complete mapping with a database
query.  This is intentionally the same mapping family TPW explores —
the difference, and the whole point of the comparison, is that the
naive algorithm pays one database query per *candidate* while TPW pays
one per *pairwise mapping path* and prunes everything else in memory.

The enumeration explodes combinatorially (the paper reports memory
exhaustion beyond target size four); :class:`NaiveEngine` converts that
failure mode into an explicit
:class:`~repro.exceptions.SearchBudgetExceeded`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config import NaiveConfig, TPWConfig
from repro.core.location import LocationMap, build_location_map
from repro.core.mapping_path import MappingPath, single_relation_mapping
from repro.core.pairwise import generate_pairwise_mapping_paths
from repro.core.weave import weave_mapping_paths
from repro.exceptions import SearchBudgetExceeded, SessionError
from repro.graphs.schema_graph import SchemaGraph
from repro.obs import get_tracer
from repro.relational.database import Database
from repro.relational.executor import tree_exists
from repro.text.errors import ErrorModel, default_error_model

#: Naive-search phases; like TPW's ``SearchStats.timings``, the result's
#: ``timings`` dict always carries every key (0.0 when a phase did not
#: run) so reporting code never KeyErrors on early-return searches.
NAIVE_PHASES: tuple[str, ...] = ("locate", "enumerate", "validate", "total")


def _default_timings() -> dict[str, float]:
    return dict.fromkeys(NAIVE_PHASES, 0.0)


@dataclass
class NaiveResult:
    """Outcome of one naive search."""

    sample_tuple: tuple[str, ...]
    #: Valid complete mappings (same notion of valid as TPW's).
    valid_mappings: list[MappingPath]
    #: Complete mapping paths enumerated before validation — the
    #: "# Naive MP" column of Table 4.
    enumerated_complete: int = 0
    #: Mapping paths enumerated across all levels (intermediate sizes
    #: included), the quantity the budget applies to.
    enumerated_total: int = 0
    #: Validation queries issued (one per complete mapping path).
    validation_queries: int = 0
    timings: dict[str, float] = field(default_factory=_default_timings)


class NaiveEngine:
    """Candidate-network-style enumerate-then-validate sample search."""

    def __init__(
        self,
        db: Database,
        config: NaiveConfig | None = None,
        model: ErrorModel | None = None,
    ) -> None:
        self.db = db
        self.config = config or NaiveConfig()
        self.model = model or default_error_model()
        self.graph = SchemaGraph(db.schema)

    # ------------------------------------------------------------------

    def _enumerate_complete(
        self, location_map: LocationMap, target_size: int, result: NaiveResult
    ) -> list[MappingPath]:
        """Enumerate the complete mapping path family, schema-only."""
        pairwise_config = TPWConfig(pmnj=self.config.pmnj)
        pmpm = generate_pairwise_mapping_paths(
            self.graph, location_map, pairwise_config
        )

        level: dict[object, MappingPath] = {}
        for mapping_paths in pmpm.values():
            for mapping_path in mapping_paths:
                level.setdefault(mapping_path.signature(), mapping_path)
        result.enumerated_total += len(level)
        self._check_budget(result)

        anchor_index: dict[tuple, list[MappingPath]] = {}
        for mapping_path in level.values():
            for key, (vertex, attribute) in mapping_path.projections.items():
                anchor = (key, mapping_path.tree.relation_of(vertex), attribute)
                anchor_index.setdefault(anchor, []).append(mapping_path)

        current = level
        for _size in range(2, target_size):
            next_level: dict[object, MappingPath] = {}
            for base in current.values():
                for key, (vertex, attribute) in base.projections.items():
                    anchor = (key, base.tree.relation_of(vertex), attribute)
                    for pair in anchor_index.get(anchor, ()):
                        other_key = next(
                            k for k in pair.projections if k != key
                        )
                        if other_key in base.keys:
                            continue
                        for woven in weave_mapping_paths(base, pair, key):
                            result.enumerated_total += 1
                            self._check_budget(result)
                            next_level.setdefault(woven.signature(), woven)
            current = next_level
        return list(current.values())

    def _check_budget(self, result: NaiveResult) -> None:
        if (
            self.config.max_candidates
            and result.enumerated_total > self.config.max_candidates
        ):
            raise SearchBudgetExceeded(
                "naive mapping path enumeration",
                self.config.max_candidates,
                phase="enumerate",
                explored={
                    "mapping_paths": result.enumerated_total,
                    "complete": result.enumerated_complete,
                    "validation_queries": result.validation_queries,
                },
            )

    # ------------------------------------------------------------------

    def search(self, sample_tuple: Sequence[str]) -> NaiveResult:
        """Enumerate all complete mapping paths, validate each by query.

        Raises
        ------
        SearchBudgetExceeded
            When the enumeration outgrows ``config.max_candidates`` —
            the analogue of the paper's out-of-memory failures at
            target sizes five and six.
        """
        samples = tuple(str(sample) for sample in sample_tuple)
        if not samples:
            raise SessionError("the sample tuple must have at least one column")
        result = NaiveResult(sample_tuple=samples, valid_mappings=[])
        tracer = get_tracer()
        with tracer.span("naive.search", columns=len(samples)) as root:
            self._search_phases(samples, result, tracer)
        result.timings["total"] = root.duration
        return result

    def _search_phases(
        self, samples: tuple[str, ...], result: NaiveResult, tracer
    ) -> None:
        with tracer.span("naive.locate") as span:
            location_map = build_location_map(self.db, samples, self.model)
        result.timings["locate"] = span.duration

        if location_map.empty_keys():
            return

        with tracer.span("naive.enumerate") as span:
            if len(samples) == 1:
                complete = [
                    single_relation_mapping(relation, {0: attribute})
                    for relation, attribute in location_map.attributes_of(0)
                ]
                result.enumerated_total = len(complete)
            else:
                complete = self._enumerate_complete(
                    location_map, len(samples), result
                )
            result.enumerated_complete = len(complete)
            span.set("enumerated", result.enumerated_total)
        result.timings["enumerate"] = span.duration

        with tracer.span("naive.validate") as span:
            sample_map = dict(enumerate(samples))
            for mapping_path in complete:
                predicates = mapping_path.predicates_for(sample_map, self.model)
                result.validation_queries += 1
                if tree_exists(self.db, mapping_path.tree, predicates):
                    result.valid_mappings.append(mapping_path)
            span.set("queries", result.validation_queries)
            span.set("valid", len(result.valid_mappings))
        result.timings["validate"] = span.duration
