"""Service-level objectives with multi-window burn-rate computation.

An :class:`Objective` states a promise over a rolling 30-day budget
window: "99% of requests succeed", "95% of requests finish within
250 ms".  The :class:`SloTracker` records every request once and
answers, per objective, how fast the error budget is burning over
several look-back windows at once — the multi-window, multi-burn-rate
alerting pattern: a short window catches a fast outage, a long window
catches a slow bleed, and requiring both to fire suppresses blips.

Burn rate is ``bad_fraction / error_budget``: 1.0 means the budget is
being spent exactly at the rate that exhausts it at the end of the
30-day window; 14.4 over 1 h means ~2% of a 30-day budget gone in an
hour (the classic page threshold).

Internals: one ring of fixed-width time buckets per objective, each
bucket a ``(good, bad)`` pair, advanced lazily on record/inspect.  The
clock is injectable so tests can steer time; the default is
``time.monotonic``.  All updates take the tracker's lock — the service
records from many request threads at once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable

#: Default look-back windows (seconds): 5 m, 30 m, 1 h, 6 h.
DEFAULT_WINDOWS: tuple[float, ...] = (300.0, 1800.0, 3600.0, 21600.0)

#: Burn rate above which a window is flagged ``alerting`` in summaries.
ALERT_BURN_RATE = 14.4


@dataclass(frozen=True)
class Objective:
    """One promise: a success-rate target, optionally latency-bounded.

    ``target`` is the promised good fraction (0 < target < 1); the
    error budget is ``1 - target``.  With ``latency_s`` set, a request
    is *bad* when it errors **or** takes longer than ``latency_s``;
    without it, only errors count.
    """

    name: str
    target: float
    latency_s: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.latency_s is not None and self.latency_s <= 0:
            raise ValueError(
                f"objective {self.name!r}: latency_s must be positive"
            )

    @property
    def budget(self) -> float:
        """The allowed bad fraction (``1 - target``)."""
        return 1.0 - self.target

    def is_bad(self, *, error: bool, duration_s: float) -> bool:
        """Whether one request violates this objective."""
        if error:
            return True
        return self.latency_s is not None and duration_s > self.latency_s


@dataclass
class _Ring:
    """Time-bucketed (good, bad) counts for one objective."""

    bucket_s: float
    size: int
    good: list[int] = field(default_factory=list)
    bad: list[int] = field(default_factory=list)
    head_bucket: int = 0  # absolute bucket index of the newest slot

    def __post_init__(self) -> None:
        self.good = [0] * self.size
        self.bad = [0] * self.size

    def _advance(self, now: float) -> int:
        bucket = int(now / self.bucket_s)
        if bucket > self.head_bucket:
            # Zero every slot skipped since the last touch (cap at one
            # full revolution — beyond that everything clears anyway).
            steps = min(bucket - self.head_bucket, self.size)
            for offset in range(1, steps + 1):
                slot = (self.head_bucket + offset) % self.size
                self.good[slot] = 0
                self.bad[slot] = 0
            self.head_bucket = bucket
        return self.head_bucket % self.size

    def record(self, now: float, bad: bool) -> None:
        slot = self._advance(now)
        if bad:
            self.bad[slot] += 1
        else:
            self.good[slot] += 1

    def window_counts(self, now: float, window_s: float) -> tuple[int, int]:
        """``(good, bad)`` across the last ``window_s`` seconds."""
        self._advance(now)
        buckets = min(self.size, max(1, int(window_s / self.bucket_s)))
        good = bad = 0
        for offset in range(buckets):
            slot = (self.head_bucket - offset) % self.size
            good += self.good[slot]
            bad += self.bad[slot]
        return good, bad


class SloTracker:
    """Records request outcomes and computes per-window burn rates."""

    def __init__(
        self,
        objectives: tuple[Objective, ...] | list[Objective],
        *,
        windows: tuple[float, ...] = DEFAULT_WINDOWS,
        bucket_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not objectives:
            raise ValueError("SloTracker needs at least one objective")
        if not windows:
            raise ValueError("SloTracker needs at least one window")
        self.objectives = tuple(objectives)
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._lock = Lock()
        size = max(1, int(self.windows[-1] / bucket_s)) + 1
        self._rings = {
            objective.name: _Ring(bucket_s=bucket_s, size=size)
            for objective in self.objectives
        }

    def record(self, *, error: bool, duration_s: float) -> None:
        """Record one finished request against every objective."""
        now = self._clock()
        with self._lock:
            for objective in self.objectives:
                self._rings[objective.name].record(
                    now, objective.is_bad(error=error, duration_s=duration_s)
                )

    def burn_rates(self) -> dict[str, dict[str, Any]]:
        """Per-objective burn rates for every configured window.

        Shape (all numbers JSON-friendly)::

            {"availability": {
                "target": 0.99, "budget": 0.01, "latency_s": null,
                "windows": {
                    "300s": {"good": 10, "bad": 0, "bad_fraction": 0.0,
                             "burn_rate": 0.0, "alerting": false},
                    ...},
                "alerting": false}}

        A window with no traffic reports a burn rate of 0.0 — absence
        of requests is not an outage the SLO can see.
        """
        now = self._clock()
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            for objective in self.objectives:
                ring = self._rings[objective.name]
                windows: dict[str, dict[str, Any]] = {}
                any_alerting = False
                for window_s in self.windows:
                    good, bad = ring.window_counts(now, window_s)
                    total = good + bad
                    bad_fraction = bad / total if total else 0.0
                    burn = bad_fraction / objective.budget
                    alerting = burn >= ALERT_BURN_RATE
                    any_alerting = any_alerting or alerting
                    windows[f"{int(window_s)}s"] = {
                        "good": good,
                        "bad": bad,
                        "bad_fraction": bad_fraction,
                        "burn_rate": burn,
                        "alerting": alerting,
                    }
                out[objective.name] = {
                    "target": objective.target,
                    "budget": objective.budget,
                    "latency_s": objective.latency_s,
                    "description": objective.description,
                    "windows": windows,
                    "alerting": any_alerting,
                }
        return out

    def publish(self, metrics: Any) -> None:
        """Export current burn rates as ``repro.slo.*`` gauges.

        ``metrics`` is the shared registry handle (live or null); one
        ``repro.slo.burn_rate{objective,window}`` gauge per pair plus a
        0/1 ``repro.slo.alerting{objective}`` rollup.
        """
        for name, state in self.burn_rates().items():
            for window, window_state in state["windows"].items():
                metrics.gauge(
                    "repro.slo.burn_rate", objective=name, window=window
                ).set(round(window_state["burn_rate"], 6))
            metrics.gauge("repro.slo.alerting", objective=name).set(
                1 if state["alerting"] else 0
            )


def default_objectives(
    *, latency_s: float = 0.25, availability: float = 0.99,
    latency_target: float = 0.95,
) -> tuple[Objective, ...]:
    """The service's stock objectives: availability + bounded latency."""
    return (
        Objective(
            name="availability",
            target=availability,
            description="requests that do not 5xx",
        ),
        Objective(
            name="latency",
            target=latency_target,
            latency_s=latency_s,
            description=f"requests finishing within {latency_s * 1000:g}ms",
        ),
    )
