"""The paper's running example database (Figures 2, 5–9).

A hand-written miniature of the Yahoo Movies source holding exactly the
tuples the paper reasons about: *Avatar* directed, written and produced
by James Cameron's trio, *Big Fish* by Tim Burton, *Harry Potter*
directed by David Yates but written by J. K. Rowling.  Unit tests and
the quickstart example run against it because every expected candidate
mapping can be enumerated by hand.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from repro.relational.types import DataType

_INT = DataType.INTEGER


def _key(name: str) -> Attribute:
    return Attribute(name, _INT, fulltext=False)


def _fk(source: str, column: str, target: str, target_column: str) -> ForeignKey:
    return ForeignKey(
        name=f"{source}_{column}",
        source=source,
        source_columns=(column,),
        target=target,
        target_columns=(target_column,),
    )


def running_example_schema() -> DatabaseSchema:
    """The eight-relation schema of Figure 5."""
    return DatabaseSchema(
        [
            RelationSchema(
                "movie",
                (_key("mid"), Attribute("title"), Attribute("logline")),
                ("mid",),
            ),
            RelationSchema("person", (_key("pid"), Attribute("name")), ("pid",)),
            RelationSchema("company", (_key("cid"), Attribute("name")), ("cid",)),
            RelationSchema("location", (_key("lid"), Attribute("loc")), ("lid",)),
            RelationSchema(
                "direct",
                (_key("mid"), _key("pid")),
                ("mid", "pid"),
                (_fk("direct", "mid", "movie", "mid"),
                 _fk("direct", "pid", "person", "pid")),
            ),
            RelationSchema(
                "write",
                (_key("mid"), _key("pid")),
                ("mid", "pid"),
                (_fk("write", "mid", "movie", "mid"),
                 _fk("write", "pid", "person", "pid")),
            ),
            RelationSchema(
                "produce",
                (_key("mid"), _key("cid")),
                ("mid", "cid"),
                (_fk("produce", "mid", "movie", "mid"),
                 _fk("produce", "cid", "company", "cid")),
            ),
            RelationSchema(
                "filmedin",
                (_key("mid"), _key("lid")),
                ("mid", "lid"),
                (_fk("filmedin", "mid", "movie", "mid"),
                 _fk("filmedin", "lid", "location", "lid")),
            ),
        ]
    )


def build_running_example() -> Database:
    """The populated running-example instance."""
    db = Database(running_example_schema(), name="running-example")
    movies = [
        (1, "Avatar", "A marine is torn between duty and a new world"),
        (2, "Big Fish", "A son untangles his dying father's tall tales"),
        (3, "Harry Potter", "A young wizard learns who he really is"),
        (4, "Ed Wood", "The story of Ed Wood, Hollywood's strangest director"),
        (5, "Titanic", "An epic romance aboard the doomed liner"),
    ]
    people = [
        (1, "James Cameron"),
        (2, "Tim Burton"),
        (3, "David Yates"),
        (4, "J. K. Rowling"),
        (5, "Ed Wood"),
        (6, "Steve Kloves"),
    ]
    companies = [
        (1, "Lightstorm Co."),
        (2, "Columbia Pictures"),
        (3, "Warner Films"),
    ]
    locations = [
        (1, "New Zealand"),
        (2, "Alabama"),
        (3, "London"),
        (4, "Halifax"),
    ]
    for row in movies:
        db.insert("movie", row)
    for row in people:
        db.insert("person", row)
    for row in companies:
        db.insert("company", row)
    for row in locations:
        db.insert("location", row)

    # Avatar: directed, written (Cameron), produced by Lightstorm,
    # filmed in New Zealand — the sample tuple of Example 2.
    db.insert("direct", (1, 1))
    db.insert("write", (1, 1))
    db.insert("produce", (1, 1))
    db.insert("filmedin", (1, 1))
    # Big Fish: Tim Burton directs (but does not write) — Example 7.
    db.insert("direct", (2, 2))
    db.insert("write", (2, 4))
    db.insert("produce", (2, 2))
    db.insert("filmedin", (2, 2))
    # Harry Potter: Yates directs, Kloves & Rowling write — Example 1.
    db.insert("direct", (3, 3))
    db.insert("write", (3, 4))
    db.insert("write", (3, 6))
    db.insert("produce", (3, 3))
    db.insert("filmedin", (3, 3))
    # Ed Wood: the movie/person name collision of Example 1.
    db.insert("direct", (4, 2))
    db.insert("write", (4, 2))
    db.insert("produce", (4, 2))
    # Titanic: second Cameron movie (fan-out).
    db.insert("direct", (5, 1))
    db.insert("write", (5, 1))
    db.insert("produce", (5, 1))
    db.insert("filmedin", (5, 4))

    db.validate_referential_integrity()
    return db
