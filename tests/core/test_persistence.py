"""Tests for session save/load."""

import json

import pytest

from repro.core.persistence import (
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)
from repro.core.session import MappingSession, SessionStatus
from repro.exceptions import SessionError


@pytest.fixture()
def converged_session(running_db):
    session = MappingSession(running_db, ["Name", "Director"])
    session.input(0, 0, "Avatar")
    session.input(0, 1, "James Cameron")
    session.input(1, 0, "Big Fish")
    session.input(1, 1, "Tim Burton")
    assert session.converged
    return session


class TestRoundTrip:
    def test_state_restored(self, tmp_path, running_db, converged_session):
        path = tmp_path / "session.json"
        save_session(converged_session, path)
        restored = load_session(running_db, path)
        assert restored.status is SessionStatus.CONVERGED
        assert restored.best_mapping() == converged_session.best_mapping()
        assert restored.spreadsheet.columns == ("Name", "Director")
        assert restored.sample_count() == converged_session.sample_count()

    def test_partial_session(self, tmp_path, running_db):
        session = MappingSession(running_db, ["Name", "Director"])
        session.input(0, 0, "Avatar")
        path = tmp_path / "partial.json"
        save_session(session, path)
        restored = load_session(running_db, path)
        assert restored.status is SessionStatus.AWAITING_FIRST_ROW
        assert restored.spreadsheet.cell(0, 0) == "Avatar"

    def test_candidate_lists_match(self, tmp_path, running_db):
        session = MappingSession(running_db, ["Name", "Director"])
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        path = tmp_path / "two.json"
        save_session(session, path)
        restored = load_session(running_db, path)
        assert [c.mapping.signature() for c in restored.candidates] == [
            c.mapping.signature() for c in session.candidates
        ]

    def test_policy_preserved(self, tmp_path, running_db):
        session = MappingSession(
            running_db, ["Name", "Director"], on_irrelevant="apply"
        )
        path = tmp_path / "policy.json"
        save_session(session, path)
        assert load_session(running_db, path).on_irrelevant == "apply"

    def test_file_is_plain_json(self, tmp_path, converged_session):
        path = tmp_path / "session.json"
        save_session(converged_session, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["columns"] == ["Name", "Director"]
        assert len(payload["cells"]) == 4


class TestErrors:
    def test_unknown_version(self, running_db):
        with pytest.raises(SessionError):
            session_from_dict(running_db, {"version": 99, "columns": ["A"]})

    def test_missing_columns(self, running_db):
        with pytest.raises(SessionError):
            session_from_dict(running_db, {"version": 1, "columns": []})

    def test_dict_round_trip(self, running_db, converged_session):
        payload = session_to_dict(converged_session)
        restored = session_from_dict(running_db, payload)
        assert restored.converged
