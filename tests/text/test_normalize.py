"""Unit tests for text normalization."""

import pytest

from repro.text.normalize import normalize_text, normalize_token


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("AVATAR") == "avatar"

    def test_collapses_whitespace(self):
        assert normalize_text("  Ed   Wood \t Jr ") == "ed wood jr"

    def test_strips_accents(self):
        assert normalize_text("Amélie à Montréal") == "amelie a montreal"

    def test_punctuation_becomes_spaces(self):
        assert normalize_text("Half-Blood: Prince!") == "half blood prince"

    def test_empty_string(self):
        assert normalize_text("") == ""

    def test_only_punctuation(self):
        assert normalize_text("...!!!") == ""

    def test_digits_preserved(self):
        assert normalize_text("2001: A Space Odyssey") == "2001 a space odyssey"

    def test_idempotent(self):
        once = normalize_text("The  Lord: of The RINGS")
        assert normalize_text(once) == once

    def test_apostrophes_split(self):
        assert normalize_text("Lightstorm Co.'s") == "lightstorm co s"

    def test_casefold_handles_sharp_s(self):
        assert normalize_text("Straße") == "strasse"


class TestNormalizeToken:
    def test_simple(self):
        assert normalize_token("Cafés") == "cafes"

    def test_strips_surrounding_space(self):
        assert normalize_token("  Wood ") == "wood"

    @pytest.mark.parametrize("token", ["abc", "ABC", "AbC"])
    def test_case_insensitive(self, token):
        assert normalize_token(token) == "abc"
