"""Graceful drain and readiness: the SIGTERM story.

In-process tests cover the app-level drain machinery (stop admitting,
wait for in-flight, close) and the ``/healthz?ready=1`` readiness
probe.  The slow tests run ``mweaver serve`` in a subprocess and send
it real signals, asserting the satellite-1 contract: SIGTERM finishes
in-flight requests, flushes the journal, and exits 0 — in both thread
and process isolation modes.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

FIRST_ROW = ((0, 0, "Avatar"), (0, 1, "James Cameron"))


class TestAppDrain:
    def test_draining_app_refuses_new_work_with_503(self, app):
        app.begin_drain()
        status, body, headers = app.handle("POST", "/sessions", {}, {})
        assert status == 503
        assert body["reason"] == "drain"
        assert int(headers["Retry-After"]) >= 1

    def test_health_endpoints_stay_answerable_while_draining(self, app):
        app.begin_drain()
        status, body, _ = app.handle("GET", "/healthz", {}, None)
        assert status == 200
        assert body["draining"] is True
        status, _, _ = app.handle("GET", "/metrics", {}, None)
        assert status == 200

    def test_begin_drain_is_idempotent(self, app):
        app.begin_drain()
        app.begin_drain()
        status, _, _ = app.handle("GET", "/healthz", {}, None)
        assert status == 200

    def test_drain_waits_for_in_flight_requests(self, app):
        status, body, _ = app.handle("POST", "/sessions", {}, {})
        session_id = body["session_id"]
        managed = app.sessions.get(session_id)
        entered = threading.Event()

        def slow_input(row, column, value, budget=None):
            entered.set()
            time.sleep(0.4)
            managed.session.spreadsheet.set_cell(row, column, value)

        managed.session.input = slow_input
        results = []

        def request():
            results.append(app.handle(
                "POST", f"/sessions/{session_id}/cells", {},
                {"row": 0, "column": 0, "value": "Avatar"},
            ))

        thread = threading.Thread(target=request)
        thread.start()
        assert entered.wait(5.0)
        clean = app.drain(timeout_s=10.0)
        thread.join(timeout=10.0)
        assert clean is True
        assert app.drain_report["clean"] is True
        assert results and results[0][0] == 200

    def test_wait_idle_times_out_on_stuck_requests(self, app):
        status, body, _ = app.handle("POST", "/sessions", {}, {})
        session_id = body["session_id"]
        managed = app.sessions.get(session_id)
        entered = threading.Event()
        release = threading.Event()

        def stuck_input(row, column, value, budget=None):
            entered.set()
            release.wait(10.0)

        managed.session.input = stuck_input
        thread = threading.Thread(target=lambda: app.handle(
            "POST", f"/sessions/{session_id}/cells", {},
            {"row": 0, "column": 0, "value": "Avatar"},
        ))
        thread.start()
        assert entered.wait(5.0)
        app.begin_drain()
        assert app.wait_idle(0.2) is False  # the unclean-drain signal
        release.set()
        thread.join(timeout=10.0)
        assert app.wait_idle(5.0) is True


class TestReadinessProbe:
    def test_ready_when_healthy(self, app):
        status, body, _ = app.handle("GET", "/healthz", {"ready": "1"}, None)
        assert status == 200
        assert body["ready"] is True
        assert "ready_blockers" not in body

    def test_not_ready_while_draining(self, app):
        app.begin_drain()
        status, body, headers = app.handle(
            "GET", "/healthz", {"ready": "1"}, None
        )
        assert status == 503
        assert body["ready"] is False
        assert body["ready_blockers"] == ["draining"]
        assert int(headers["Retry-After"]) >= 1

    def test_not_ready_with_an_open_breaker(self, app, monkeypatch):
        monkeypatch.setattr(
            app.registry, "breaker_snapshots",
            lambda: [{"name": "running", "state": "open"}],
        )
        # Liveness stays 200 (degraded), readiness goes 503.
        status, body, _ = app.handle("GET", "/healthz", {}, None)
        assert status == 200
        assert body["status"] == "degraded"
        status, body, _ = app.handle("GET", "/healthz", {"ready": "1"}, None)
        assert status == 503
        assert body["ready_blockers"] == ["breaker:running"]

    def test_plain_healthz_does_not_carry_ready(self, app):
        status, body, _ = app.handle("GET", "/healthz", {}, None)
        assert status == 200
        assert "ready" not in body


# ----------------------------------------------------------------------
# The real thing: signals against a live server process.
# ----------------------------------------------------------------------

def _request(port, method, path, body=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else None
    finally:
        conn.close()


def _serve_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _start_server(tmp_path, env, *extra_args):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--datasets", "running",
            "--journal-dir", str(tmp_path / "journal"),
            "--workers", "2", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.monotonic() + 120.0
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].strip().rstrip("/"))
            break
    if port is None:
        process.kill()
        raise AssertionError("server did not report its port in time")
    return process, port


def _sigterm_round_trip(tmp_path, *extra_args):
    """Feed a session, SIGTERM the server, return (exit, output, journal)."""
    env = _serve_env()
    process, port = _start_server(tmp_path, env, *extra_args)
    try:
        status, body = _request(port, "POST", "/sessions", {
            "columns": ["Name", "Director"],
        })
        assert status == 201, body
        session_id = body["session_id"]
        for row, column, value in FIRST_ROW:
            status, body = _request(
                port, "POST", f"/sessions/{session_id}/cells",
                {"row": row, "column": column, "value": value},
            )
            assert status == 200, body
    except BaseException:
        process.kill()
        process.wait(timeout=30.0)
        process.stdout.close()
        raise
    process.send_signal(signal.SIGTERM)
    exit_code = process.wait(timeout=120.0)
    output = process.stdout.read()
    process.stdout.close()
    journal = tmp_path / "journal" / "sessions.journal"
    return exit_code, output, journal, session_id


@pytest.mark.slow
class TestSigtermDrain:
    def test_thread_mode_sigterm_drains_and_flushes(self, tmp_path):
        exit_code, output, journal, session_id = _sigterm_round_trip(tmp_path)
        assert exit_code == 0
        assert "draining" in output
        assert "drained in" in output
        records = [
            json.loads(line)
            for line in journal.read_text().strip().splitlines()
        ]
        assert [r["op"] for r in records] == ["create", "cell", "cell"]
        # The drained journal restores the session on the next boot.
        process, port = _start_server(tmp_path, _serve_env())
        try:
            status, body = _request(port, "GET", f"/sessions/{session_id}")
            assert status == 200, body
            assert body["samples"] == 2
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=120.0)
            process.stdout.close()

    def test_process_mode_sigterm_drains_and_flushes(self, tmp_path):
        exit_code, output, journal, _session_id = _sigterm_round_trip(
            tmp_path, "--isolation", "process", "--procs", "2",
        )
        assert exit_code == 0
        assert "drained in" in output
        records = [
            json.loads(line)
            for line in journal.read_text().strip().splitlines()
        ]
        assert [r["op"] for r in records] == ["create", "cell", "cell"]

    def test_sigint_also_drains(self, tmp_path):
        env = _serve_env()
        process, port = _start_server(tmp_path, env)
        try:
            status, _body = _request(port, "GET", "/healthz")
            assert status == 200
        except BaseException:
            process.kill()
            process.wait(timeout=30.0)
            process.stdout.close()
            raise
        process.send_signal(signal.SIGINT)
        exit_code = process.wait(timeout=120.0)
        output = process.stdout.read()
        process.stdout.close()
        assert exit_code == 0
        assert "drained in" in output
