"""Shard health: heartbeat probes feeding per-shard circuit breakers.

One background thread probes every shard's ``/healthz?ready=1`` on an
interval and feeds the result straight into that shard's
:class:`~repro.resilience.CircuitBreaker` — the heartbeat *is* the
breaker's probe, so the monitor calls ``record_success`` /
``record_failure`` directly rather than routing through
``before_call``.  Routing results feed the same breakers, so a shard
that dies between heartbeats is marked down by the first failed
request, not only by the next probe round.

A shard is **up** (routable) while it has never tripped its breaker,
or — after tripping — once it has answered ``readmit_threshold``
*consecutive* healthy probes past the breaker's reset window.  The
sustained-healthy window is what keeps a flapping shard (alternating
ok/fail heartbeats) out of the routing table instead of oscillating it
in and out every probe round: a single lucky heartbeat is not
re-admission, a streak is.

Membership is live: :meth:`add_shard` / :meth:`remove_shard` let the
coordinator's admin API grow and shrink the probed set at runtime.

Log hygiene: state *transitions* log once (marked down, back up); a
shard that stays down does not re-warn every probe round, and a probe
that keeps failing with the same odd error logs it once per downtime
episode.

Determinism hooks for tests: the probe function, the clock, and
:meth:`HealthMonitor.probe_once` (one synchronous round, no thread).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from typing import Any

from repro.exceptions import ShardUnavailableError
from repro.obs import get_logger, get_metrics
from repro.resilience.retry import CircuitBreaker

_log = get_logger(__name__)


class HealthMonitor:
    """Heartbeats + breakers for a live (mutable) set of shards."""

    def __init__(
        self,
        clients: Mapping[str, Any],
        *,
        interval_s: float = 0.5,
        failure_threshold: int = 3,
        reset_timeout_s: float = 2.0,
        readmit_threshold: int = 2,
        probe: Callable[[Any], bool] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if readmit_threshold < 1:
            raise ValueError("readmit_threshold must be >= 1")
        self.interval_s = interval_s
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.readmit_threshold = readmit_threshold
        self._probe = probe or self._ready_probe
        self._clock = clock
        # One lock guards membership and the per-shard state tables;
        # breaker transitions have their own internal lock.
        self._lock = threading.RLock()
        self.clients: dict[str, Any] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        self._last_probe: dict[str, bool | None] = {}
        #: Routing view: True while the shard must not receive traffic.
        self._down: dict[str, bool] = {}
        #: Consecutive healthy probes since the shard went down.
        self._healthy_streak: dict[str, int] = {}
        #: The odd-probe-error message already logged this episode.
        self._odd_logged: dict[str, str | None] = {}
        for shard, client in clients.items():
            self.add_shard(shard, client)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @staticmethod
    def _ready_probe(client: Any) -> bool:
        """Default probe: the shard's readiness endpoint answers 200.

        A 503 (draining, open dataset breaker) counts as *not ready* —
        traffic should rotate away — and a transport failure obviously
        does.  Any other status still proves the process answers, which
        is what routing needs.
        """
        reply = client.call("GET", "/healthz", {"ready": "1"}, None)
        return reply.status == 200

    # -- membership ----------------------------------------------------

    def add_shard(self, shard: str, client: Any) -> None:
        """Start probing ``shard`` (idempotent for a known shard)."""
        with self._lock:
            if shard in self.clients:
                return
            self.clients[shard] = client
            self.breakers[shard] = CircuitBreaker(
                f"cluster.shard:{shard}",
                failure_threshold=self.failure_threshold,
                reset_timeout_s=self.reset_timeout_s,
                clock=self._clock,
            )
            self._last_probe[shard] = None
            self._down[shard] = False
            self._healthy_streak[shard] = 0
            self._odd_logged[shard] = None
        self._publish(shard)

    def remove_shard(self, shard: str) -> Any:
        """Stop probing ``shard``; returns its client (for closing)."""
        with self._lock:
            client = self.clients.pop(shard, None)
            self.breakers.pop(shard, None)
            self._last_probe.pop(shard, None)
            self._down.pop(shard, None)
            self._healthy_streak.pop(shard, None)
            self._odd_logged.pop(shard, None)
        return client

    def shards(self) -> tuple[str, ...]:
        """Every monitored shard, in admission order."""
        with self._lock:
            return tuple(self.clients)

    # -- probing -------------------------------------------------------

    def probe_once(self) -> dict[str, bool]:
        """One synchronous probe round; returns shard -> healthy."""
        with self._lock:
            targets = list(self.clients.items())
        results: dict[str, bool] = {}
        for shard, client in targets:
            try:
                healthy = bool(self._probe(client))
            except ShardUnavailableError:
                healthy = False
            except Exception as error:  # noqa: BLE001 - probe must not die
                self._log_odd_failure(shard, error)
                healthy = False
            results[shard] = healthy
            if healthy:
                self.record_success(shard)
            else:
                self.record_failure(shard)
        return results

    def _log_odd_failure(self, shard: str, error: Exception) -> None:
        """Warn once per (shard, error) downtime episode, not per round."""
        message = f"{type(error).__name__}: {error}"
        with self._lock:
            if shard not in self.clients:
                return
            already = self._odd_logged.get(shard)
            self._odd_logged[shard] = message
        if already != message:
            _log.warning(
                "health probe %s failed oddly: %s (suppressing repeats "
                "until the shard recovers)", shard, message,
            )
        else:
            _log.debug("health probe %s failed oddly again: %s",
                       shard, message)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.probe_once()

    def start(self) -> "HealthMonitor":
        """Run probe rounds on a daemon thread until :meth:`stop`."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="cluster-health", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the heartbeat thread and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- breaker feed (heartbeats AND routing results) -----------------

    def record_success(self, shard: str) -> None:
        """A probe or routed call succeeded: feed the breaker.

        A shard that tripped its breaker is only re-admitted to routing
        after ``readmit_threshold`` consecutive successes — the first
        healthy heartbeat after a crash is a half-open trial, not a
        recovery.
        """
        with self._lock:
            if shard not in self.clients:
                return
            breaker = self.breakers[shard]
            if not self._down[shard]:
                breaker.record_success()
            else:
                self._healthy_streak[shard] += 1
                if self._healthy_streak[shard] < self.readmit_threshold:
                    self._last_probe[shard] = True
                    return
                breaker.record_success()
                self._down[shard] = False
                self._healthy_streak[shard] = 0
                _log.info(
                    "shard %s is back up (%d consecutive healthy "
                    "probe(s))", shard, self.readmit_threshold,
                )
            self._last_probe[shard] = True
            self._odd_logged[shard] = None
        self._publish(shard)

    def record_failure(self, shard: str) -> None:
        """A probe or routed call failed: feed the breaker."""
        with self._lock:
            if shard not in self.clients:
                return
            breaker = self.breakers[shard]
            breaker.record_failure()
            self._healthy_streak[shard] = 0
            self._last_probe[shard] = False
            newly_down = (
                breaker.snapshot()["state"] == CircuitBreaker.OPEN
                and not self._down[shard]
            )
            if newly_down:
                self._down[shard] = True
        if newly_down:
            _log.warning("shard %s marked down (breaker open)", shard)
            get_metrics().counter(
                "repro.cluster.shard.down_transitions", shard=shard
            ).inc()
        self._publish(shard)

    def _publish(self, shard: str) -> None:
        get_metrics().gauge(
            "repro.cluster.shard.up", shard=shard
        ).set(1 if self.is_up(shard) else 0)

    # -- queries -------------------------------------------------------

    def is_up(self, shard: str) -> bool:
        """Routable: never tripped, or re-admitted after a sustained-
        healthy probe streak.  Unknown shards are never routable."""
        with self._lock:
            return shard in self.clients and not self._down[shard]

    def up_shards(self) -> tuple[str, ...]:
        """Every currently routable shard, in admission order."""
        with self._lock:
            return tuple(s for s in self.clients if not self._down[s])

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready per-shard health for ``/healthz``."""
        with self._lock:
            shards = sorted(self.clients)
            return [
                {
                    "shard": shard,
                    "up": not self._down[shard],
                    "last_probe_ok": self._last_probe[shard],
                    "healthy_streak": self._healthy_streak[shard],
                    "breaker": self.breakers[shard].snapshot(),
                }
                for shard in shards
            ]
