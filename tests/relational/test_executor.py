"""Unit tests for the tree-query evaluator, against the running example."""

import pytest

from repro.relational.executor import (
    evaluate_tree,
    iterate_assignments,
    project_assignment,
    tree_exists,
)
from repro.relational.query import ContainsPredicate, JoinTree, JoinTreeEdge
from repro.text.errors import CaseTokenModel

MODEL = CaseTokenModel()


def movie_direct_person() -> JoinTree:
    return JoinTree(
        {0: "movie", 1: "direct", 2: "person"},
        (
            JoinTreeEdge(0, 1, "direct_mid", 1),
            JoinTreeEdge(1, 2, "direct_pid", 1),
        ),
    )


def star_tree() -> JoinTree:
    """movie joined to person (via direct) and company (via produce)."""
    return JoinTree(
        {0: "movie", 1: "direct", 2: "person", 3: "produce", 4: "company"},
        (
            JoinTreeEdge(0, 1, "direct_mid", 1),
            JoinTreeEdge(1, 2, "direct_pid", 1),
            JoinTreeEdge(0, 3, "produce_mid", 3),
            JoinTreeEdge(3, 4, "produce_cid", 3),
        ),
    )


class TestEvaluateTree:
    def test_single_vertex_all_rows(self, running_db):
        tree = JoinTree({0: "movie"})
        assignments = evaluate_tree(running_db, tree)
        assert len(assignments) == len(running_db.table("movie"))

    def test_single_vertex_with_predicate(self, running_db):
        tree = JoinTree({0: "movie"})
        predicate = ContainsPredicate(0, "title", "Avatar", MODEL)
        assignments = evaluate_tree(running_db, tree, [predicate])
        assert len(assignments) == 1
        assert running_db.table("movie").value(assignments[0][0], "title") == "Avatar"

    def test_join_count_matches_junction_size(self, running_db):
        # Unconstrained movie-direct-person joins: one row per direct row.
        assignments = evaluate_tree(running_db, movie_direct_person())
        assert len(assignments) == len(running_db.table("direct"))

    def test_predicates_at_both_ends(self, running_db):
        predicates = [
            ContainsPredicate(0, "title", "Harry Potter", MODEL),
            ContainsPredicate(2, "name", "David Yates", MODEL),
        ]
        assignments = evaluate_tree(running_db, movie_direct_person(), predicates)
        assert len(assignments) == 1

    def test_unsatisfiable_predicates(self, running_db):
        predicates = [
            ContainsPredicate(0, "title", "Harry Potter", MODEL),
            ContainsPredicate(2, "name", "Tim Burton", MODEL),  # wrong director
        ]
        assert evaluate_tree(running_db, movie_direct_person(), predicates) == []

    def test_predicate_with_no_occurrence(self, running_db):
        predicates = [ContainsPredicate(0, "title", "Nonexistent", MODEL)]
        assert evaluate_tree(running_db, movie_direct_person(), predicates) == []

    def test_limit(self, running_db):
        assignments = evaluate_tree(running_db, movie_direct_person(), limit=2)
        assert len(assignments) == 2

    def test_star_join(self, running_db):
        predicates = [
            ContainsPredicate(0, "title", "Avatar", MODEL),
        ]
        assignments = evaluate_tree(running_db, star_tree(), predicates)
        assert len(assignments) == 1
        values = project_assignment(
            running_db,
            star_tree(),
            assignments[0],
            [(2, "name"), (4, "name")],
        )
        assert values == ("James Cameron", "Lightstorm Co.")

    def test_assignments_bind_every_vertex(self, running_db):
        for assignment in iterate_assignments(running_db, star_tree()):
            assert set(assignment) == {0, 1, 2, 3, 4}

    def test_every_edge_actually_joined(self, running_db):
        tree = movie_direct_person()
        for assignment in iterate_assignments(running_db, tree):
            direct_row = running_db.table("direct").row(assignment[1])
            movie_row = running_db.table("movie").row(assignment[0])
            person_row = running_db.table("person").row(assignment[2])
            assert direct_row[0] == movie_row[0]   # mid matches
            assert direct_row[1] == person_row[0]  # pid matches

    def test_deterministic_order(self, running_db):
        first = evaluate_tree(running_db, movie_direct_person())
        second = evaluate_tree(running_db, movie_direct_person())
        assert first == second

    def test_multiple_predicates_same_vertex(self, running_db):
        predicates = [
            ContainsPredicate(0, "title", "Big", MODEL),
            ContainsPredicate(0, "title", "Fish", MODEL),
        ]
        tree = JoinTree({0: "movie"})
        assignments = evaluate_tree(running_db, tree, predicates)
        assert len(assignments) == 1


class TestTreeExists:
    def test_exists_true(self, running_db):
        predicates = [
            ContainsPredicate(0, "title", "Big Fish", MODEL),
            ContainsPredicate(2, "name", "Tim Burton", MODEL),
        ]
        assert tree_exists(running_db, movie_direct_person(), predicates)

    def test_exists_false_via_write(self, running_db):
        """Example 7: Big Fish was not written by Tim Burton."""
        tree = JoinTree(
            {0: "movie", 1: "write", 2: "person"},
            (
                JoinTreeEdge(0, 1, "write_mid", 1),
                JoinTreeEdge(1, 2, "write_pid", 1),
            ),
        )
        predicates = [
            ContainsPredicate(0, "title", "Big Fish", MODEL),
            ContainsPredicate(2, "name", "Tim Burton", MODEL),
        ]
        assert not tree_exists(running_db, tree, predicates)

    def test_exists_unconstrained(self, running_db):
        assert tree_exists(running_db, movie_direct_person())
