"""``repro.cluster`` — the fault-tolerant sharded mapping tier.

A coordinator routes mapping sessions across N replicated
``mweaver shard`` backends (each a full :mod:`repro.service` stack),
turning the single-node service into a cluster that survives any
single shard's ``kill -9`` without losing accepted session state:

* :mod:`repro.cluster.ring` — consistent hashing with R-way replica
  sets; session placement that stays stable across shard churn,
* :mod:`repro.cluster.client` — keep-alive shard clients that turn
  transport failures into typed routing signals,
* :mod:`repro.cluster.health` — heartbeat probes feeding per-shard
  circuit breakers (the reused :class:`repro.resilience.CircuitBreaker`),
* :mod:`repro.cluster.coordinator` — session routing with journal-
  replay failover, background replication, and hedged scatter-gather
  LocateSample with partial-result degradation,
* :mod:`repro.cluster.spawn` — subprocess harness for real topologies
  (chaos tests, the failover bench, CI smoke),
* :mod:`repro.cluster.supervisor` — crashed-shard respawn with seeded
  jittered backoff; re-admission rides the heartbeat half-open path,
* :mod:`repro.cluster.rebalance` — bounded-rate session reseating
  after live membership changes (the ``/admin/shards`` join/
  decommission API),
* :mod:`repro.cluster.antientropy` — periodic digest comparison across
  each session's replica set, reseating missing/divergent replicas
  from the coordinator journal under a cooperative work budget.

The coordinator speaks the same HTTP surface as ``mweaver serve``, so
existing clients, the load bench and ``mweaver top`` work against it
unchanged; durability comes from journaling accepted mutations through
the same :class:`repro.resilience.SessionJournal` the shards use.
"""

from __future__ import annotations

from repro.cluster.antientropy import AntiEntropyRepairer, RepairRound
from repro.cluster.client import (
    HttpShardClient,
    InProcessShardClient,
    ShardReply,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.coordinator import (
    ClusterSession,
    CoordinatorApp,
    Replicator,
)
from repro.cluster.health import HealthMonitor
from repro.cluster.rebalance import Rebalancer
from repro.cluster.ring import HashRing
from repro.cluster.spawn import (
    CoordinatorProcess,
    ServerProcess,
    ShardProcess,
)
from repro.cluster.supervisor import ShardSupervisor
from repro.resilience.journal import grid_digest

__all__ = [
    "ClusterConfig",
    "CoordinatorApp",
    "ClusterSession",
    "Replicator",
    "Rebalancer",
    "AntiEntropyRepairer",
    "RepairRound",
    "ShardSupervisor",
    "HashRing",
    "HealthMonitor",
    "ShardReply",
    "HttpShardClient",
    "InProcessShardClient",
    "ServerProcess",
    "ShardProcess",
    "CoordinatorProcess",
    "grid_digest",
]
