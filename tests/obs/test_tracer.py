"""Tests for the hierarchical span tracer."""

import threading

import pytest

from repro import obs
from repro.obs.tracer import (
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    traced,
    tracing_enabled,
)


class TestSpan:
    def test_records_wall_and_cpu_time(self):
        with Span("work") as span:
            sum(range(10_000))
        assert span.status == "ok"
        assert span.duration > 0
        assert span.cpu_duration >= 0
        assert span.error is None

    def test_attributes_set_and_add(self):
        span = Span("work", {"a": 1})
        span.set("b", "x").add("hits").add("hits", 2)
        assert span.attributes == {"a": 1, "b": "x", "hits": 3}

    def test_exception_marks_error_and_propagates(self):
        span = Span("work")
        with pytest.raises(ValueError, match="boom"):
            with span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        assert span.duration > 0

    def test_walk_find_find_all(self):
        root = Span("root")
        first, second = Span("child"), Span("child")
        root.children.extend([first, second])
        first.children.append(Span("leaf"))
        assert [s.name for s in root.walk()] == ["root", "child", "leaf", "child"]
        assert root.find("child") is first
        assert root.find("missing") is None
        assert root.find_all("child") == [first, second]

    def test_restored_reads_no_clocks(self):
        span = Span.restored(
            "old", duration=1.5, cpu_duration=1.2, status="error", error="E: x"
        )
        assert span.duration == 1.5
        assert span.status == "error"


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b") as b:
                with tracer.span("leaf"):
                    pass
            assert tracer.current() is outer
        assert tracer.current() is None
        (root,) = tracer.finished
        assert root is outer
        assert [child.name for child in root.children] == ["inner.a", "inner.b"]
        assert [child.name for child in b.children] == ["leaf"]

    def test_sequential_roots_collect_in_order(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.finished] == ["first", "second"]
        tracer.reset()
        assert tracer.finished == ()

    def test_exception_still_closes_and_attaches(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("x")
        (root,) = tracer.finished
        assert root.status == "error"
        assert root.children[0].status == "error"

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer()
        seen = []

        def work(label):
            with tracer.span(f"thread.{label}"):
                seen.append(tracer.current().name)

        with tracer.span("main"):
            thread = threading.Thread(target=work, args=("a",))
            thread.start()
            thread.join()
            assert tracer.current().name == "main"
        assert seen == ["thread.a"]
        # The thread's span finished with an empty stack there: own root.
        assert {span.name for span in tracer.finished} == {"main", "thread.a"}


class TestDisabledPath:
    def test_null_tracer_hands_out_stopwatches(self):
        tracer = NullTracer()
        with tracer.span("anything", attr=1) as watch:
            sum(range(1000))
        assert isinstance(watch, Stopwatch)
        assert watch.duration > 0  # real wall-clock, per the contract
        assert watch.attributes == {}
        assert watch.set("k", "v") is watch
        assert tracer.finished == ()
        assert tracer.current() is None

    def test_stopwatch_never_swallows(self):
        with pytest.raises(KeyError):
            with NullTracer().span("x"):
                raise KeyError("k")

    def test_global_handle_toggles(self):
        assert not tracing_enabled()
        try:
            tracer = enable_tracing()
            assert tracing_enabled()
            assert get_tracer() is tracer
            assert enable_tracing() is tracer  # idempotent
        finally:
            disable_tracing()
        assert not tracing_enabled()
        assert isinstance(get_tracer(), NullTracer)


class TestScopedAndDecorator:
    def test_scoped_swaps_and_restores(self):
        before = get_tracer()
        with obs.scoped() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with tracer.span("inside"):
                pass
        assert get_tracer() is before
        assert [span.name for span in tracer.finished] == ["inside"]

    def test_scoped_reuses_an_enabled_tracer(self):
        with obs.scoped() as outer:
            with obs.scoped() as inner:
                assert inner is outer

    def test_traced_decorator(self):
        @traced("custom.name")
        def work(x):
            return x * 2

        with obs.scoped() as tracer:
            assert work(21) == 42
        assert [span.name for span in tracer.finished] == ["custom.name"]

    def test_traced_default_name(self):
        @traced()
        def helper():
            return 1

        with obs.scoped() as tracer:
            helper()
        assert "helper" in tracer.finished[0].name
