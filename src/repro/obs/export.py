"""Exporters: JSON-lines for machines, span trees and tables for humans.

The JSON-lines format is one object per line, each tagged with ``kind``:

``{"kind": "span", ...}``
    One span.  Fields: ``trace`` (root index within the file), ``id``
    (pre-order index within the trace), ``parent`` (parent ``id`` or
    ``null`` for roots), ``name``, ``epoch_s`` (wall-clock epoch
    seconds at which the span opened — the field that lets traces
    recorded by *different processes* be merged and ordered offline;
    ``start`` is kept as a legacy alias), ``duration_s``, ``cpu_s``,
    ``status`` (``ok``/``error``), ``error`` (string or ``null``) and
    ``attrs`` (the span's attributes, which must be JSON-serializable —
    instrumented call sites stringify dict keys for this reason).

``{"kind": "metrics", ...}``
    At most one per file: the registry snapshot (``counters`` /
    ``gauges`` / ``histograms``), as returned by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.

:func:`parse_jsonl` round-trips the span records back into
:class:`~repro.obs.tracer.Span` trees, so traces can be inspected with
the same ``walk``/``find`` API whether they are live or reloaded.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

from repro.obs.tracer import Span


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------

def span_records(spans: Sequence[Span]) -> Iterable[dict[str, Any]]:
    """Flatten root span trees into ``kind=span`` records, pre-order."""
    for trace_index, root in enumerate(spans):
        counter = 0
        stack: list[tuple[Span, int | None]] = [(root, None)]
        while stack:
            span, parent_id = stack.pop()
            span_id = counter
            counter += 1
            yield {
                "kind": "span",
                "trace": trace_index,
                "id": span_id,
                "parent": parent_id,
                "name": span.name,
                "epoch_s": span.start_epoch,
                "start": span.start_epoch,
                "duration_s": span.duration,
                "cpu_s": span.cpu_duration,
                "status": span.status,
                "error": span.error,
                "attrs": span.attributes,
            }
            # Reversed so the stack pops children left to right,
            # giving pre-order ids.
            for child in reversed(span.children):
                stack.append((child, span_id))


def to_jsonl(
    spans: Sequence[Span],
    metrics_snapshot: dict[str, Any] | None = None,
) -> str:
    """Serialize spans (and optionally a metrics snapshot) to JSON-lines."""
    lines = [json.dumps(record, default=str) for record in span_records(spans)]
    if metrics_snapshot is not None:
        lines.append(json.dumps({"kind": "metrics", **metrics_snapshot}))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    path: str | Path,
    spans: Sequence[Span],
    metrics_snapshot: dict[str, Any] | None = None,
) -> Path:
    """Write :func:`to_jsonl` output to ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_jsonl(spans, metrics_snapshot), encoding="utf-8")
    return target


def _restore_one(record: dict[str, Any]) -> Span:
    return Span.restored(
        record["name"],
        attributes=record.get("attrs") or {},
        start_epoch=record.get("epoch_s", record.get("start", 0.0)),
        duration=record.get("duration_s", 0.0),
        cpu_duration=record.get("cpu_s", 0.0),
        status=record.get("status", "ok"),
        error=record.get("error"),
    )


def records_to_spans(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild root :class:`Span` trees from ``kind=span`` record dicts.

    The exact inverse of :func:`span_records`, minus the JSON framing —
    this is the transport the isolation worker pool uses to ship span
    trees over its pipe (records travel as pickled dicts, no text
    round-trip).  Raises ``ValueError`` on a dangling parent id.
    """
    roots: list[Span] = []
    by_id: dict[tuple[int, int], Span] = {}
    for index, record in enumerate(records):
        span = _restore_one(record)
        by_id[(record.get("trace", 0), record["id"])] = span
        parent_id = record.get("parent")
        if parent_id is None:
            roots.append(span)
        else:
            parent = by_id.get((record.get("trace", 0), parent_id))
            if parent is None:
                raise ValueError(
                    f"record {index}: parent {parent_id} not seen yet"
                )
            parent.children.append(span)
    return roots


def parse_jsonl(text: str) -> tuple[list[Span], dict[str, Any] | None]:
    """Rebuild ``(root spans, metrics snapshot or None)`` from JSON-lines.

    Raises ``ValueError`` on malformed lines or dangling parent ids.
    """
    span_records_seen: list[dict[str, Any]] = []
    metrics_snapshot: dict[str, Any] | None = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: not JSON ({error})") from error
        kind = record.get("kind")
        if kind == "metrics":
            metrics_snapshot = {
                key: value for key, value in record.items() if key != "kind"
            }
            continue
        if kind != "span":
            raise ValueError(f"line {line_number}: unknown kind {kind!r}")
        span_records_seen.append(record)
    roots = records_to_spans(span_records_seen)
    return roots, metrics_snapshot


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------

def _format_attrs(attributes: dict[str, Any], limit: int = 6) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in list(attributes.items())[:limit]:
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    if len(attributes) > limit:
        parts.append("…")
    return "  " + " ".join(parts)


def _render_span(
    span: Span,
    prefix: str,
    is_last: bool,
    lines: list[str],
    *,
    epoch_base: float | None = None,
) -> None:
    connector = "" if not prefix and is_last is None else ("└─ " if is_last else "├─ ")
    timing = f"[{span.duration * 1000:.1f}ms"
    if span.cpu_duration:
        timing += f" cpu {span.cpu_duration * 1000:.1f}ms"
    timing += "]"
    if epoch_base is not None and span.start_epoch:
        # Wall-clock offset from the earliest root: the key that keeps
        # spans stitched from different processes readable in order.
        timing += f" @+{(span.start_epoch - epoch_base) * 1000:.1f}ms"
    marker = " !" if span.status == "error" else ""
    lines.append(
        f"{prefix}{connector}{span.name} {timing}{marker}"
        f"{_format_attrs(span.attributes)}"
    )
    child_prefix = prefix + ("" if is_last is None else ("   " if is_last else "│  "))
    for index, child in enumerate(span.children):
        _render_span(
            child, child_prefix, index == len(span.children) - 1, lines,
            epoch_base=epoch_base,
        )


def render_tree(spans: Sequence[Span], *, epochs: bool = False) -> str:
    """Render root span trees as an indented tree with durations.

    ``epochs=True`` additionally prints each span's wall-clock offset
    (``@+12.3ms``) from the earliest root — useful for traces merged
    from several processes, whose monotonic timings do not correlate.
    """
    if not spans:
        return "(no spans recorded)"
    epoch_base: float | None = None
    if epochs:
        starts = [span.start_epoch for span in spans if span.start_epoch]
        epoch_base = min(starts) if starts else None
    lines: list[str] = []
    for root in spans:
        _render_span(root, "", None, lines, epoch_base=epoch_base)  # type: ignore[arg-type]
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Render a metrics snapshot as aligned name/value lines."""
    rows: list[tuple[str, str]] = []
    for key, value in snapshot.get("counters", {}).items():
        rows.append((key, str(value)))
    for key, value in snapshot.get("gauges", {}).items():
        rows.append((key, str(value)))
    for key, data in snapshot.get("histograms", {}).items():
        count = data.get("count", 0)
        total = data.get("sum", 0.0)
        mean = total / count if count else 0.0
        rows.append((key, f"count={count} sum={total:.6g} mean={mean:.6g}"))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _value in rows)
    return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)
