"""The benchmark regression observatory.

``results/BENCH_*.json`` files record what a benchmark measured;
nothing so far *read* them.  This module closes the loop:

1. :func:`measure_smoke` runs a small, fixed workload set (the paper's
   running example plus scaled-down yahoo/imdb searches) under
   :mod:`repro.bench.resources` accounting and writes one
   **bench record** — wall, CPU and peak-memory numbers per workload
   plus a calibration constant;
2. :func:`compare_records` diffs a fresh record against a committed
   baseline (``results/baselines/``) with noise-tolerant thresholds;
3. :func:`render_markdown` emits the comparison as a markdown table,
   and :func:`main` wires it all into ``benchmarks/regress.py`` — the
   CI perf smoke gate (warn on >15 % wall drift, hard-fail on >2x).

Noise tolerance
---------------

Cross-machine wall clocks are not comparable, so every record carries
``calibration_s``: the wall time of a fixed pure-Python microbenchmark
on the recording machine.  Comparisons scale the baseline by the
calibration ratio before thresholding.  Two more guards keep the gate
quiet: per-workload timings are the **minimum** over ``--reps`` runs
(the least-disturbed run), and workloads faster than
:data:`MIN_SECONDS` only fail when the absolute drift also exceeds
:data:`MIN_ABS_DRIFT_S` — a 3 ms workload doubling to 6 ms is noise,
not a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.bench.reporting import results_path
from repro.bench.resources import measure, measure_min

#: Record format version (bump when the JSON shape changes).
RECORD_KIND = "bench-record"

#: Baselines live here, committed to the repository.
BASELINE_DIR_NAME = "baselines"

#: Below this baseline wall time, relative thresholds alone cannot fail.
MIN_SECONDS = 0.003
#: ...unless the absolute drift also exceeds this.
MIN_ABS_DRIFT_S = 0.01

#: Statuses a workload comparison can land on, in increasing severity.
STATUSES = ("ok", "new", "missing", "warn", "fail")


@dataclass(frozen=True)
class Threshold:
    """Relative drift thresholds for one measured quantity.

    ``warn`` and ``fail`` are fractional increases over the (calibrated)
    baseline: ``warn=0.15`` flags +15 %, ``fail=1.0`` flags >2x.
    """

    warn: float
    fail: float


#: Wall time is the headline gate (CI: warn >15 %, hard-fail >2x).
WALL_THRESHOLD = Threshold(warn=0.15, fail=1.0)
#: CPU drifts are thresholded like wall but are not calibrated.
CPU_THRESHOLD = Threshold(warn=0.25, fail=1.5)
#: Python allocation peaks are deterministic — tight thresholds.
MEMORY_THRESHOLD = Threshold(warn=0.20, fail=1.0)
#: Service request latency (p95 under concurrent load) is far noisier
#: than a single-thread search: the gate only trips on gross (>5x)
#: regressions, as the ISSUE's "generous threshold" for CI asks.
SERVICE_WALL_THRESHOLD = Threshold(warn=1.0, fail=4.0)


@dataclass(frozen=True)
class Comparison:
    """One workload's verdict against the baseline."""

    workload: str
    metric: str
    baseline: float
    current: float
    #: Baseline scaled by the machines' calibration ratio.
    adjusted_baseline: float
    ratio: float
    status: str

    def describe(self) -> str:
        """``workload wall_s: 0.012 -> 0.031 (2.58x) FAIL`` style line."""
        return (
            f"{self.workload} {self.metric}: {self.baseline:.4g} -> "
            f"{self.current:.4g} ({self.ratio:.2f}x) {self.status.upper()}"
        )


def calibrate(reps: int = 5) -> float:
    """Wall seconds of a fixed pure-Python microbenchmark (min of reps).

    The workload mixes dict churn, string joins and arithmetic — the
    operations the search hot paths spend their time on — so the ratio
    between two machines' calibrations approximates the ratio of their
    single-core Python throughput.
    """

    def workload() -> int:
        table: dict[str, int] = {}
        for index in range(20_000):
            table[f"key-{index % 997}"] = index * 31 % 65537
        total = 0
        for key, value in table.items():
            total += len(key) + value
        return total

    best = float("inf")
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


def smoke_workloads(scale: int) -> dict[str, Any]:
    """The smoke suite: name -> zero-argument callable.

    Small by design — the CI gate must run in seconds.  Databases build
    outside the measured region (the lru-cached fixtures), so each
    callable measures one search only.
    """
    from repro.bench.fixtures import bench_databases, bench_task_sets
    from repro.bench.harness import sample_tuple_for
    from repro.core.tpw import TPWEngine
    from repro.datasets.running_example import build_running_example
    from repro.datasets.workload import user_study_task_imdb

    running = build_running_example()
    yahoo, imdb = bench_databases(scale)
    task_sets = bench_task_sets()

    def run(db, samples):
        return lambda: TPWEngine(db).search(samples)

    avatar = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
    workloads = {"running/avatar": run(running, avatar)}
    for set_index, task_index in ((0, 0), (1, 1)):
        task = task_sets[set_index].tasks[task_index]
        samples = sample_tuple_for(yahoo, task, seed=5)
        workloads[f"yahoo/{task.name}"] = run(yahoo, samples)
    imdb_task = user_study_task_imdb()
    workloads[f"imdb/{imdb_task.name}"] = run(
        imdb, sample_tuple_for(imdb, imdb_task, seed=5)
    )
    return workloads


def measure_smoke(*, scale: int = 60, reps: int = 3) -> dict[str, Any]:
    """Measure the smoke suite into one bench record (a plain dict)."""
    record: dict[str, Any] = {
        "kind": RECORD_KIND,
        "name": "smoke",
        "calibration_s": calibrate(),
        "meta": {"scale": scale, "reps": reps},
        "workloads": {},
    }
    for name, fn in smoke_workloads(scale).items():
        timing, memory = measure_min(fn, reps=reps)
        entry = timing.to_dict()
        entry["py_peak_bytes"] = memory.py_peak_bytes
        record["workloads"][name] = entry
    return record


def load_record(path: Path | str) -> dict[str, Any]:
    """Read one bench record, validating the ``kind`` marker."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("kind") != RECORD_KIND:
        raise ValueError(f"{path}: not a {RECORD_KIND} file")
    return data


def baseline_path(name: str = "BENCH_smoke.json") -> Path:
    """``results/baselines/<name>`` under the repository root."""
    return results_path(BASELINE_DIR_NAME) / name


def _compare_metric(
    workload: str,
    metric: str,
    baseline: float,
    current: float,
    threshold: Threshold,
    calibration_ratio: float,
    *,
    noise_floor: bool,
) -> Comparison:
    adjusted = baseline * calibration_ratio
    ratio = current / adjusted if adjusted > 0 else float("inf")
    status = "ok"
    drift = ratio - 1.0
    if drift > threshold.warn:
        status = "warn"
    if drift > threshold.fail:
        status = "fail"
    if (
        noise_floor
        and status == "fail"
        and adjusted < MIN_SECONDS
        and (current - adjusted) < MIN_ABS_DRIFT_S
    ):
        # Tiny workload doubling within the absolute noise band: a real
        # 2x regression on real work would clear MIN_ABS_DRIFT_S.
        status = "warn"
    return Comparison(
        workload=workload,
        metric=metric,
        baseline=baseline,
        current=current,
        adjusted_baseline=adjusted,
        ratio=ratio,
        status=status,
    )


def compare_records(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    wall: Threshold = WALL_THRESHOLD,
    cpu: Threshold = CPU_THRESHOLD,
    memory: Threshold = MEMORY_THRESHOLD,
    require_all: bool = True,
) -> list[Comparison]:
    """Diff two bench records, workload by workload.

    Workloads present on only one side yield ``new`` / ``missing``
    pseudo-comparisons (a *missing* workload fails the gate — a silently
    dropped benchmark is itself a regression of coverage).  With
    ``require_all=False`` baseline-only workloads are skipped instead:
    the service smoke job measures a subset (1 client) of the committed
    1/4/8-client baseline on purpose.
    """
    base_cal = float(baseline.get("calibration_s") or 0.0)
    cur_cal = float(current.get("calibration_s") or 0.0)
    calibration_ratio = cur_cal / base_cal if base_cal > 0 and cur_cal > 0 else 1.0
    comparisons: list[Comparison] = []
    base_workloads = baseline.get("workloads", {})
    cur_workloads = current.get("workloads", {})
    for name in sorted(set(base_workloads) | set(cur_workloads)):
        if name not in cur_workloads:
            if not require_all:
                continue
            comparisons.append(
                Comparison(name, "wall_s", base_workloads[name]["wall_s"],
                           0.0, 0.0, 0.0, "missing")
            )
            continue
        if name not in base_workloads:
            comparisons.append(
                Comparison(name, "wall_s", 0.0,
                           cur_workloads[name]["wall_s"], 0.0, 0.0, "new")
            )
            continue
        base_entry, cur_entry = base_workloads[name], cur_workloads[name]
        comparisons.append(
            _compare_metric(
                name, "wall_s", float(base_entry["wall_s"]),
                float(cur_entry["wall_s"]), wall, calibration_ratio,
                noise_floor=True,
            )
        )
        base_cpu = float(base_entry.get("cpu_s") or 0.0)
        cur_cpu = float(cur_entry.get("cpu_s") or 0.0)
        if base_cpu > 0 and cur_cpu > 0:
            comparisons.append(
                _compare_metric(
                    name, "cpu_s", base_cpu, cur_cpu, cpu, calibration_ratio,
                    noise_floor=True,
                )
            )
        base_peak = float(base_entry.get("py_peak_bytes") or 0)
        cur_peak = float(cur_entry.get("py_peak_bytes") or 0)
        if base_peak > 0 and cur_peak > 0:
            comparisons.append(
                _compare_metric(
                    name, "py_peak_bytes", base_peak, cur_peak, memory,
                    1.0, noise_floor=False,
                )
            )
    return comparisons


def worst_status(comparisons: list[Comparison]) -> str:
    """The most severe status across all comparisons."""
    worst = "ok"
    for comparison in comparisons:
        if STATUSES.index(comparison.status) > STATUSES.index(worst):
            worst = comparison.status
    # ``missing`` gates as hard as ``fail``; ``new`` is informational.
    return worst


def gate_exit_code(comparisons: list[Comparison]) -> int:
    """0 when the gate passes; 1 on any ``fail`` or ``missing``."""
    return int(
        any(c.status in ("fail", "missing") for c in comparisons)
    )


_STATUS_MARKS = {
    "ok": "✅", "new": "🆕", "warn": "⚠️", "fail": "❌", "missing": "❌",
}


def render_markdown(
    comparisons: list[Comparison],
    *,
    calibration_ratio: float | None = None,
) -> str:
    """The comparison as a markdown summary (CI job output)."""
    lines = ["# Bench regression report", ""]
    if calibration_ratio is not None:
        lines.append(
            f"Machine calibration ratio (current/baseline): "
            f"{calibration_ratio:.2f} — baselines scaled accordingly."
        )
        lines.append("")
    lines.append("| workload | metric | baseline | current | ratio | status |")
    lines.append("|---|---|---:|---:|---:|:---:|")
    for c in comparisons:
        mark = _STATUS_MARKS.get(c.status, c.status)
        lines.append(
            f"| {c.workload} | {c.metric} | {c.baseline:.4g} | "
            f"{c.current:.4g} | {c.ratio:.2f}x | {mark} {c.status} |"
        )
    lines.append("")
    verdict = worst_status(comparisons)
    if verdict in ("fail", "missing"):
        lines.append("**Verdict: FAIL** — performance regression gate tripped.")
    elif verdict == "warn":
        lines.append(
            "**Verdict: WARN** — drift above the watch threshold "
            "(non-blocking)."
        )
    else:
        lines.append("**Verdict: OK** — within thresholds.")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI: measure the smoke suite and/or gate against a baseline.

    ``--measure`` writes ``results/BENCH_smoke.json``; ``--check``
    compares it (measuring first when absent) against the committed
    baseline and exits 1 on a hard failure; ``--update`` promotes the
    fresh record to the baseline.  ``--markdown FILE`` mirrors the
    report (``-`` for stdout only).

    ``--service`` switches the whole pipeline to the mapping-service
    load bench (:mod:`repro.bench.service_load`): the record becomes
    ``results/BENCH_service.json``, the baseline
    ``results/baselines/BENCH_service.json``, the wall gate the
    deliberately generous :data:`SERVICE_WALL_THRESHOLD`, and
    baseline-only concurrency levels are skipped (CI measures just the
    1-client level of the committed 1/4/8 baseline).

    ``--resilience`` does the same for the degraded-mode workloads
    (:func:`repro.bench.service_load.measure_resilience`): record
    ``results/BENCH_resilience.json``, baseline under
    ``results/baselines/``, happy/budgeted/degraded/faulty workloads
    gated on errors first and latency second.

    ``--overload`` gates the isolation/overload workloads
    (:func:`repro.bench.service_load.measure_overload`): record
    ``results/BENCH_overload.json`` — an unloaded thread-mode baseline,
    a 4x-capacity shed run (accepted-request goodput), and the
    process-isolation happy path whose p50 against the baseline is
    ``meta.process_overhead_pct``.

    ``--obs`` gates the observability stack
    (:func:`repro.bench.service_load.measure_obs`): record
    ``results/BENCH_obs.json`` — an instrumentation-off baseline, then
    metrics-only, metrics+tracing, and the full stack with the
    sampling profiler, plus Prometheus scrape latency on a warm
    registry.  ``meta.metrics_overhead_pct`` (the tracing-off serve
    configuration) and ``meta.tracing_overhead_pct`` report p50 drift
    against the off baseline.

    ``--cluster`` gates the sharded-cluster bench
    (:func:`repro.bench.cluster_load.measure_cluster`): record
    ``results/BENCH_cluster.json`` — a same-machine single-node
    reference, per-shard aggregate capacity, the coordinator-routed
    path, and a failover run with one shard ``kill -9``-ed mid-bench.
    The correctness gate (zero errors / zero mismatches) doubles as
    the zero-loss failover check; latency gates as usual.
    """
    parser = argparse.ArgumentParser(
        prog="regress.py",
        description="Compare bench runs against committed baselines.",
    )
    parser.add_argument("--measure", action="store_true",
                        help="run the smoke suite and write BENCH_smoke.json")
    parser.add_argument("--check", action="store_true",
                        help="gate the fresh record against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="promote the fresh record to the baseline")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline record (default: results/baselines/)")
    parser.add_argument("--current", metavar="FILE",
                        help="compare this record instead of measuring")
    parser.add_argument("--markdown", metavar="FILE",
                        help="write the markdown report here ('-' = stdout)")
    parser.add_argument("--scale", type=int, default=60,
                        help="bench database scale (movies)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions per workload (min wins)")
    parser.add_argument("--service", action="store_true",
                        help="bench the mapping service load instead of "
                             "the search smoke suite")
    parser.add_argument("--resilience", action="store_true",
                        help="bench the degraded-mode service workloads "
                             "(anytime budgets + fault mix)")
    parser.add_argument("--overload", action="store_true",
                        help="bench the overload/isolation workloads "
                             "(shed at 4x capacity + process-mode "
                             "happy path)")
    parser.add_argument("--obs", action="store_true",
                        help="bench the observability stack overhead "
                             "(metrics / tracing / profiler / scrape)")
    parser.add_argument("--cluster", action="store_true",
                        help="bench the sharded cluster (scale-out "
                             "capacity + kill -9 failover under load)")
    parser.add_argument("--clients", default="1,4,8", metavar="N,N,...",
                        help="concurrency levels for --service "
                             "(--resilience uses the first level only)")
    parser.add_argument("--flows", type=int, default=5,
                        help="flows per client for "
                             "--service/--resilience/--overload")
    args = parser.parse_args(argv)
    if not (args.measure or args.check or args.update):
        parser.error("pick at least one of --measure / --check / --update")
    if sum((args.service, args.resilience, args.overload, args.obs,
            args.cluster)) > 1:
        parser.error(
            "--service / --resilience / --overload / --obs / --cluster "
            "are mutually exclusive"
        )

    if args.cluster:
        record_name = "BENCH_cluster.json"
        wall_threshold = SERVICE_WALL_THRESHOLD
        require_all = False
    elif args.obs:
        record_name = "BENCH_obs.json"
        wall_threshold = SERVICE_WALL_THRESHOLD
        require_all = False
    elif args.overload:
        record_name = "BENCH_overload.json"
        wall_threshold = SERVICE_WALL_THRESHOLD
        require_all = False
    elif args.resilience:
        record_name = "BENCH_resilience.json"
        wall_threshold = SERVICE_WALL_THRESHOLD
        require_all = False
    elif args.service:
        record_name = "BENCH_service.json"
        wall_threshold = SERVICE_WALL_THRESHOLD
        require_all = False
    else:
        record_name = "BENCH_smoke.json"
        wall_threshold = WALL_THRESHOLD
        require_all = True

    current: dict[str, Any] | None = None
    if args.current:
        current = load_record(args.current)
    if current is None and (args.measure or args.check or args.update):
        if args.cluster:
            from repro.bench.cluster_load import measure_cluster

            print(f"measuring cluster workloads (flows={args.flows})…")
            current = measure_cluster(flows_per_client=args.flows)
            meta = current.get("meta", {})
            print(
                f"single node: {meta.get('single_node_rps')} rps | "
                f"aggregate capacity (3 shards): "
                f"{meta.get('aggregate_capacity_rps')} rps "
                f"({meta.get('capacity_vs_single_node')}x) | "
                f"routed: {meta.get('routed_rps')} rps | "
                f"failover p50: {meta.get('failover_p50_ms')} ms "
                f"({meta.get('failovers')} failover(s), "
                f"{meta.get('failover_refusals')} refusal(s) retried)"
            )
        elif args.obs:
            from repro.bench.service_load import measure_obs

            print(f"measuring observability workloads (flows={args.flows})…")
            current = measure_obs(flows_per_client=args.flows)
            meta = current.get("meta", {})
            for label, key in (
                ("metrics-only", "metrics_overhead_pct"),
                ("metrics+tracing", "tracing_overhead_pct"),
                ("full stack", "full_stack_overhead_pct"),
            ):
                overhead = meta.get(key)
                if overhead is not None:
                    print(f"{label} overhead: {overhead:+.2f}% (p50)")
        elif args.overload:
            from repro.bench.service_load import measure_overload

            print(f"measuring overload workloads (flows={args.flows})…")
            current = measure_overload(flows_per_client=args.flows)
            overhead = current.get("meta", {}).get("process_overhead_pct")
            if overhead is not None:
                print(f"process-isolation happy-path overhead: "
                      f"{overhead:+.2f}% (p50)")
        elif args.resilience:
            from repro.bench.service_load import measure_resilience

            clients = tuple(
                int(level) for level in args.clients.split(",") if level.strip()
            )
            print(f"measuring resilience workloads (clients={clients[0]}, "
                  f"flows={args.flows})…")
            current = measure_resilience(
                clients=clients[0], flows_per_client=args.flows
            )
            overhead = current.get("meta", {}).get("happy_path_overhead_pct")
            if overhead is not None:
                print(f"happy-path budget overhead: {overhead:+.2f}% (p50)")
        elif args.service:
            from repro.bench.service_load import measure_service

            clients = tuple(
                int(level) for level in args.clients.split(",") if level.strip()
            )
            print(f"measuring service load (clients={clients}, "
                  f"flows={args.flows})…")
            current = measure_service(
                clients=clients, flows_per_client=args.flows
            )
        else:
            print(f"measuring smoke suite (scale={args.scale}, "
                  f"reps={args.reps})…")
            current = measure_smoke(scale=args.scale, reps=args.reps)
        out = results_path(record_name)
        out.write_text(json.dumps(current, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")

    service_modes = (
        args.service or args.resilience or args.overload or args.obs
        or args.cluster
    )
    if service_modes and current is not None:
        # Correctness gates before any latency talk: every flow must
        # have completed, and (where convergence is checked) converged
        # identically to the serial run.  The degraded/faulty workloads
        # skip convergence, so only errors can trip them here.
        broken = {
            name: entry
            for name, entry in current.get("workloads", {}).items()
            if entry.get("errors") or entry.get("mismatches")
        }
        if broken:
            for name, entry in broken.items():
                print(
                    f"{name}: {entry.get('errors', 0)} request error(s), "
                    f"{entry.get('mismatches', 0)} result mismatch(es)",
                    file=sys.stderr,
                )
            return 1

    if args.update:
        assert current is not None
        target = baseline_path(record_name)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(current, indent=2) + "\n", encoding="utf-8")
        print(f"baseline updated: {target}")

    if not args.check:
        return 0

    assert current is not None
    base_file = Path(args.baseline) if args.baseline else baseline_path(record_name)
    if not base_file.exists():
        print(f"no baseline at {base_file}; run with --update to create one",
              file=sys.stderr)
        return 1
    baseline = load_record(base_file)
    comparisons = compare_records(
        baseline, current, wall=wall_threshold, require_all=require_all
    )
    base_cal = float(baseline.get("calibration_s") or 0.0)
    cur_cal = float(current.get("calibration_s") or 0.0)
    ratio = cur_cal / base_cal if base_cal > 0 and cur_cal > 0 else None
    report = render_markdown(comparisons, calibration_ratio=ratio)
    print(report)
    if args.markdown and args.markdown != "-":
        Path(args.markdown).write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.markdown}")
    return gate_exit_code(comparisons)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
