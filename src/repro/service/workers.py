"""A bounded worker pool with per-job deadlines and cancellation.

Search and prune work runs *off* the request thread: the HTTP handler
submits a closure, the pool's bounded queue provides backpressure (a
full queue raises :class:`~repro.exceptions.ServiceOverloadedError`,
which the HTTP layer turns into ``429 Too Many Requests``), and every
job carries a deadline.

Cancellation is cooperative.  A job whose waiter gave up is marked
cancelled; if it is still queued when a worker picks it up, it is
dropped without running (the common overload case — queues back up
before CPUs do).  A job already executing cannot be interrupted —
Python threads cannot be killed — so the waiter returns
:class:`~repro.exceptions.DeadlineExceeded` while the worker finishes
and discards the result; the session-level atomicity guarantees
(see :meth:`repro.core.session.MappingSession.input`) keep the session
consistent either way.

Span parentage: :meth:`WorkerPool.submit` captures the submitting
thread's innermost open span (typically the ``service.request`` root)
and the worker executes the job under ``tracer.adopt(...)``, so spans
opened by the job nest where a reader expects them.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.exceptions import DeadlineExceeded, ServiceOverloadedError
from repro.obs import get_logger, get_metrics, get_tracer
from repro.resilience.faults import fault_point

_log = get_logger(__name__)


class Job:
    """One unit of submitted work and its synchronization state."""

    __slots__ = (
        "job_id", "fn", "deadline", "timeout_s", "parent_span",
        "done", "result", "error", "_lock", "_cancelled", "_started",
    )

    def __init__(
        self,
        job_id: int,
        fn: Callable[[], Any],
        *,
        timeout_s: float,
        parent_span: Any = None,
    ) -> None:
        self.job_id = job_id
        self.fn = fn
        self.timeout_s = timeout_s
        self.deadline = time.monotonic() + timeout_s
        self.parent_span = parent_span
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self._lock = threading.Lock()
        self._cancelled = False
        self._started = False

    # -- state transitions (all under the lock) ------------------------

    def cancel(self) -> bool:
        """Mark the job cancelled; True when it had not started yet."""
        with self._lock:
            if self._started:
                return False
            self._cancelled = True
            return True

    def try_start(self) -> bool:
        """Worker-side claim: False when cancelled or past deadline."""
        with self._lock:
            if self._cancelled:
                return False
            if time.monotonic() > self.deadline:
                self._cancelled = True
                return False
            self._started = True
            return True

    @property
    def cancelled(self) -> bool:
        """Whether the job was cancelled before it could start."""
        with self._lock:
            return self._cancelled

    # -- waiting -------------------------------------------------------

    def wait(self) -> Any:
        """Block until the job finishes or its deadline passes.

        Returns the job's result, re-raises its exception, or raises
        :class:`DeadlineExceeded` — cancelling the job if it is still
        queued so it never runs.
        """
        remaining = self.deadline - time.monotonic()
        if not self.done.wait(timeout=max(0.0, remaining)):
            self.cancel()
            # The job may have finished between the wait timing out and
            # the cancel: prefer its real outcome when it did.
            if not self.done.is_set():
                raise DeadlineExceeded("queued work", self.timeout_s)
        if self.error is not None:
            raise self.error
        if self.cancelled:
            raise DeadlineExceeded("queued work", self.timeout_s)
        return self.result


class WorkerPool:
    """Fixed worker threads draining one bounded queue."""

    def __init__(
        self, *, workers: int, queue_size: int, retry_after_s: float = 1.0
    ) -> None:
        self.retry_after_s = retry_after_s
        self._queue: queue.Queue[Job | None] = queue.Queue(maxsize=queue_size)
        self._ids = itertools.count(1)
        self._closed = False
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"mweaver-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self, fn: Callable[[], Any], *, timeout_s: float
    ) -> Job:
        """Enqueue ``fn``; raise :class:`ServiceOverloadedError` when full."""
        if self._closed:
            raise ServiceOverloadedError(
                "worker pool is shut down", retry_after_s=self.retry_after_s
            )
        job = Job(
            next(self._ids),
            fn,
            timeout_s=timeout_s,
            parent_span=get_tracer().current(),
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            get_metrics().counter("repro.service.queue.rejected").inc()
            raise ServiceOverloadedError(
                "work queue full", retry_after_s=self.retry_after_s
            ) from None
        get_metrics().gauge("repro.service.queue.depth").set(
            self._queue.qsize()
        )
        return job

    def run(self, fn: Callable[[], Any], *, timeout_s: float) -> Any:
        """Submit and wait — the synchronous request-thread entry point."""
        return self.submit(fn, timeout_s=timeout_s).wait()

    def qsize(self) -> int:
        """Jobs waiting in the queue (admission-control input)."""
        return self._queue.qsize()

    def snapshot(self) -> dict[str, int]:
        """Occupancy view: thread count, busy threads, queue depth."""
        with self._busy_lock:
            busy = self._busy
        return {
            "workers": len(self._threads),
            "busy": busy,
            "queue_depth": self._queue.qsize(),
        }

    def _set_busy(self, delta: int) -> None:
        with self._busy_lock:
            self._busy += delta
            busy = self._busy
        get_metrics().gauge("repro.service.workers.busy").set(busy)

    # -- worker loop ---------------------------------------------------

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            metrics = get_metrics()
            metrics.gauge("repro.service.queue.depth").set(self._queue.qsize())
            if not job.try_start():
                metrics.counter("repro.service.jobs.expired").inc()
                job.done.set()
                self._queue.task_done()
                continue
            started = time.perf_counter()
            self._set_busy(1)
            try:
                with get_tracer().adopt(job.parent_span):
                    # Chaos seam: lets tests fail or stall a job right
                    # where the worker hands control to the request body.
                    fault_point("workers.job")
                    job.result = job.fn()
            except BaseException as error:  # delivered to the waiter
                job.error = error
            finally:
                self._set_busy(-1)
                metrics.histogram("repro.service.job.seconds").observe(
                    time.perf_counter() - started
                )
                job.done.set()
                self._queue.task_done()

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
