"""Cross-process trace propagation: worker spans stitch under requests.

Process-mode jobs run in supervised subprocesses; the worker installs a
fresh tracer per traced job, ships its finished spans back over the
result pipe, and the parent grafts them under the request span that
submitted the job.  These tests assert the stitched tree looks exactly
like thread mode to every consumer — ``/debug/requests/{id}``, JSONL
export, ``mweaver explain`` — including when the worker is SIGKILLed
mid-span (a synthesized error span marks the kill).
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.exceptions import ServiceUnavailableError
from repro.resilience.isolation import ProcessWorkerPool
from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig

from tests.service.conftest import FLOW_CELLS


def make_pool(**overrides) -> ProcessWorkerPool:
    settings = dict(procs=1, queue_size=8)
    settings.update(overrides)
    pool = ProcessWorkerPool(**settings)
    assert pool.wait_ready(60.0), "no worker completed its handshake"
    return pool


@pytest.fixture
def pool():
    pool = make_pool()
    yield pool
    pool.shutdown()


class TestPoolTraceTransport:
    def test_worker_spans_graft_under_the_submitting_span(self, pool):
        with obs.scoped() as tracer:
            with tracer.span("test.request") as root:
                result = pool.run("diag.echo", {"value": 7}, timeout_s=10.0)
        assert result["echo"] == 7
        (task_span,) = [
            span for span in root.walk() if span.name == "isolation.task"
        ]
        assert task_span.attributes["task"] == "diag.echo"
        # The pid attribute proves the span was recorded in the worker.
        assert task_span.attributes["pid"] == result["pid"]
        assert task_span.attributes["pid"] != os.getpid()
        assert task_span.status == "ok"
        assert task_span.start_epoch > 0

    def test_untraced_jobs_ship_no_spans(self, pool):
        # Tracing disabled at submit time: the worker must not pay for
        # span bookkeeping, and nothing grafts on the way back.
        job = pool.submit("diag.echo", {"value": 1}, timeout_s=10.0)
        result = job.wait()
        assert result["echo"] == 1
        assert job.trace is False
        assert job.remote_spans == []

    def test_failed_jobs_still_ship_their_partial_trace(self, pool):
        with obs.scoped() as tracer:
            with tracer.span("test.request") as root:
                with pytest.raises(RuntimeError, match="kapow"):
                    pool.run(
                        "diag.boom", {"message": "kapow"}, timeout_s=10.0
                    )
        (task_span,) = [
            span for span in root.walk() if span.name == "isolation.task"
        ]
        assert task_span.status == "error"
        assert "kapow" in (task_span.error or "")

    def test_jsonl_round_trip_of_a_stitched_trace(self, pool, tmp_path):
        with obs.scoped() as tracer:
            with tracer.span("test.request"):
                pool.run("diag.echo", {"value": 3}, timeout_s=10.0)
            spans = tracer.finished
            snapshot = obs.get_metrics().snapshot()
        target = obs.write_jsonl(
            str(tmp_path / "trace.jsonl"), spans, snapshot
        )
        roots, _ = obs.parse_jsonl(
            open(target, encoding="utf-8").read()
        )
        (root,) = roots
        assert [child.name for child in root.children] == [
            "isolation.task"
        ]


class TestWorkerKillMidSpan:
    def test_sigkill_synthesizes_an_error_span_per_attempt(self):
        # kill_after below the waiter timeout: the first kill requeues
        # the job once, the second kill surfaces 503 — and both
        # attempts leave a kill marker in the stitched trace.
        pool = make_pool(procs=1)
        try:
            with obs.scoped() as tracer:
                with tracer.span("test.request") as root:
                    with pytest.raises(ServiceUnavailableError):
                        pool.run(
                            "diag.sleep", {"seconds": 30.0},
                            timeout_s=30.0, kill_after_s=0.4,
                        )
        finally:
            pool.shutdown()
        markers = [
            span for span in root.walk()
            if span.name == "isolation.task"
            and span.attributes.get("killed")
        ]
        assert [span.attributes["attempt"] for span in markers] == [1, 2]
        for span in markers:
            assert span.status == "error"
            assert "killed" in (span.error or "")
            assert span.attributes["task"] == "diag.sleep"
            assert span.start_epoch > 0


@pytest.fixture
def traced_proc_app():
    """A process-mode app with always-on bounded tracing, like serve."""
    from repro.obs.tracer import Tracer, disable_tracing, set_tracer

    obs.enable_metrics()
    set_tracer(Tracer(max_roots=64))
    app = ServiceApp(
        ServiceConfig(
            datasets=("running",),
            isolation="process",
            procs=1,
            workers=2,
            queue_size=8,
            request_timeout_s=15.0,
        )
    )
    yield app
    app.close()
    disable_tracing()
    obs.disable()


def run_flow_collecting_ids(app) -> list[str]:
    _, created, headers = app.handle("POST", "/sessions", {}, {})
    ids = [headers["X-Request-Id"]]
    session_id = created["session_id"]
    for row, column, value in FLOW_CELLS:
        status, body, headers = app.handle(
            "POST", f"/sessions/{session_id}/cells", {},
            {"row": row, "column": column, "value": value},
        )
        assert status == 200, body
        ids.append(headers["X-Request-Id"])
    return ids


class TestServiceStitchedTraces:
    def test_debug_requests_returns_one_stitched_trace(
        self, traced_proc_app
    ):
        ids = run_flow_collecting_ids(traced_proc_app)
        # The first completed row ran the search in a worker process.
        status, detail, _ = traced_proc_app.handle(
            "GET", f"/debug/requests/{ids[2]}", {}, None
        )
        assert status == 200
        roots = obs.records_to_spans(detail["spans"])
        assert len(roots) == 1, "one request = one stitched trace"
        (root,) = roots
        assert root.name == "service.request"
        task_spans = [
            span for span in root.walk() if span.name == "isolation.task"
        ]
        assert task_spans, "worker spans must stitch under the request"
        assert all(
            span.attributes["pid"] != os.getpid() for span in task_spans
        )

    def test_explain_parity_with_thread_mode(
        self, traced_proc_app, make_app
    ):
        """The stitched process trace explains like the thread trace."""

        def search_explanation(app) -> str:
            for request_id in run_flow_collecting_ids(app):
                status, detail, _ = app.handle(
                    "GET", f"/debug/requests/{request_id}", {}, None
                )
                assert status == 200
                roots = obs.records_to_spans(detail["spans"])
                searches = obs.find_searches(roots)
                if searches:
                    explanation = obs.SearchExplanation.from_trace(
                        roots,
                        search_id=searches[0].attributes.get("search_id"),
                    )
                    return explanation.to_text()
            pytest.fail("no request trace contained a search")

        process_text = search_explanation(traced_proc_app)
        thread_text = search_explanation(make_app())

        def normalize(text: str) -> list[str]:
            # Strip timings and the global search-id counter — identical
            # structure, not identical speed or allocation order.
            import re

            return [
                re.sub(
                    r"search #\d+", "search #N",
                    re.sub(r"\d+\.\d+ms", "Xms", line),
                )
                for line in text.splitlines()
            ]

        assert normalize(process_text) == normalize(thread_text)
