"""Tests for the interactive mapping session (Section 3)."""

import pytest

from repro.core.session import MappingSession, SessionStatus
from repro.exceptions import SessionError


@pytest.fixture()
def session(running_db):
    return MappingSession(running_db, ["Name", "Director"])


class TestLifecycle:
    def test_initial_state(self, session):
        assert session.status is SessionStatus.AWAITING_FIRST_ROW
        assert session.candidates == []
        assert not session.converged

    def test_partial_first_row_no_search(self, session):
        session.input(0, 0, "Avatar")
        assert session.status is SessionStatus.AWAITING_FIRST_ROW
        assert session.search_result is None

    def test_complete_first_row_triggers_search(self, session):
        session.input(0, 0, "Avatar")
        status = session.input(0, 1, "James Cameron")
        assert status is SessionStatus.ACTIVE
        assert session.search_result is not None
        assert len(session.candidates) == 2

    def test_input_below_before_search_rejected(self, session):
        with pytest.raises(SessionError):
            session.input(1, 0, "Big Fish")

    def test_pruning_to_convergence(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        status = session.input(1, 1, "Tim Burton")
        assert status is SessionStatus.CONVERGED
        assert session.converged
        best = session.best_mapping()
        assert best is not None
        assert best.attribute_of(0) == ("movie", "title")

    def test_immediate_convergence(self, running_db):
        session = MappingSession(running_db, ["Name", "Director"])
        session.input(0, 0, "Harry Potter")
        status = session.input(0, 1, "David Yates")
        assert status is SessionStatus.CONVERGED

    def test_no_candidates_status(self, running_db):
        session = MappingSession(running_db, ["Name", "Director"])
        session.input(0, 0, "Avatar")
        status = session.input(0, 1, "Completely Unknown Person")
        assert status is SessionStatus.NO_CANDIDATES
        assert session.warnings  # irrelevant-sample warning recorded

    def test_named_column_input(self, session):
        session.input_named(0, "Name", "Avatar")
        session.input_named(0, "Director", "James Cameron")
        assert session.search_result is not None

    def test_sample_count(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        assert session.sample_count() == 2

    def test_events_logged(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        kinds = [event.kind for event in session.events]
        assert "input" in kinds and "search" in kinds

    def test_describe(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        text = session.describe()
        assert "candidates: 2" in text


class TestIrrelevantSamplePolicy:
    def test_ignore_policy_reverts_cell(self, running_db):
        session = MappingSession(
            running_db, ["Name", "Director"], on_irrelevant="ignore"
        )
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        before = len(session.candidates)
        status = session.input(1, 0, "Zorro The Unknown")
        assert status is SessionStatus.ACTIVE
        assert len(session.candidates) == before
        assert session.spreadsheet.cell(1, 0) is None
        assert session.warnings

    def test_apply_policy_empties(self, running_db):
        session = MappingSession(
            running_db, ["Name", "Director"], on_irrelevant="apply"
        )
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        status = session.input(1, 0, "Zorro The Unknown")
        assert status is SessionStatus.NO_CANDIDATES

    def test_invalid_policy_rejected(self, running_db):
        with pytest.raises(SessionError):
            MappingSession(running_db, ["A"], on_irrelevant="bogus")


class TestEditing:
    def test_editing_row0_reruns_search(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        assert len(session.candidates) == 2
        # switch to the Yates tuple: converges on direct only
        session.input(0, 0, "Harry Potter")
        session.input(0, 1, "David Yates")
        assert session.converged

    def test_replay_preserves_later_rows(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        assert session.converged
        # editing row 0 to the same values keeps the pruning applied
        session.input(0, 0, "Titanic")
        assert session.converged  # direct variant still the only one

    def test_clearing_cell_replays(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        assert session.converged
        session.input(1, 1, "")  # clear the decisive sample
        # Big Fish alone does not disambiguate direct vs write
        assert len(session.candidates) == 2

    def test_overwriting_cell_replays(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        assert session.converged
        # overwrite with a value consistent with both variants
        session.input(1, 0, "Titanic")
        session.input(1, 1, "James Cameron")
        assert len(session.candidates) == 2


class TestUndo:
    def test_undo_restores_candidates(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        assert session.converged
        status = session.undo()
        assert status is SessionStatus.ACTIVE
        assert len(session.candidates) == 2
        assert session.spreadsheet.cell(1, 1) is None

    def test_undo_first_row_returns_to_awaiting(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        status = session.undo()
        assert status is SessionStatus.AWAITING_FIRST_ROW
        assert session.search_result is None
        assert session.candidates == []

    def test_undo_overwrite_restores_previous_content(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(0, 0, "Harry Potter")
        session.input(0, 1, "David Yates")
        assert session.converged
        session.undo()  # Director back to James Cameron
        session.undo()  # Name back to Avatar
        assert session.spreadsheet.first_row() == ("Avatar", "James Cameron")
        assert len(session.candidates) == 2

    def test_undo_empty_stack(self, session):
        with pytest.raises(SessionError):
            session.undo()

    def test_undo_then_redo_by_retyping(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        session.undo()
        session.input(1, 1, "Tim Burton")
        assert session.converged


class TestMaterialize:
    def test_materialize_converged(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        target = session.materialize()
        relation = target.schema.relation("target")
        assert relation.attribute_names == ("Name", "Director")
        rows = set(target.table("target"))
        assert ("Harry Potter", "David Yates") in rows

    def test_materialize_requires_convergence(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")  # two candidates remain
        with pytest.raises(SessionError):
            session.materialize()

    def test_materialize_before_search(self, session):
        with pytest.raises(SessionError):
            session.materialize()


class TestTimings:
    def test_search_and_prune_timed(self, session):
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        assert len(session.timings.search_seconds) == 1
        assert len(session.timings.prune_seconds) >= 1
        assert all(t >= 0 for t in session.timings.prune_seconds)
