"""The Tuple Path Weaving engine (Section 4.5, end to end).

:class:`TPWEngine` wires the five TPW steps together:

1. locate sample occurrences (:mod:`repro.core.location`),
2. generate pairwise mapping paths (:mod:`repro.core.pairwise`),
3. instantiate them into pairwise tuple paths
   (:mod:`repro.core.instantiate`),
4. weave complete tuple paths (:mod:`repro.core.weave`),
5. extract and rank candidate mappings (:mod:`repro.core.ranking`).

A target of size one never enters the weave: its candidates are exactly
the single-attribute mappings of the location map, instantiated
directly.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config import TPWConfig
from repro.core.instantiate import (
    create_pairwise_tuple_paths,
    instantiate_mapping_path,
)
from repro.core.location import LocationMap, build_location_map
from repro.core.mapping_path import MappingPath, single_relation_mapping
from repro.core.pairwise import count_pairwise_paths, generate_pairwise_mapping_paths
from repro.core.ranking import RankedMapping, rank_mappings
from repro.core.stats import SearchStats
from repro.core.tuple_path import TuplePath
from repro.core.weave import weave_complete_tuple_paths
from repro.exceptions import SessionError
from repro.graphs.schema_graph import SchemaGraph
from repro.relational.database import Database
from repro.text.errors import ErrorModel, default_error_model


@dataclass
class SearchResult:
    """Outcome of one sample search.

    ``candidates`` are the valid complete mappings, best ranked first;
    ``stats`` carries the counters Tables 2–4 and Figure 13 report.
    """

    sample_tuple: tuple[str, ...]
    candidates: list[RankedMapping]
    location_map: LocationMap
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def mappings(self) -> list[MappingPath]:
        """The candidate mapping paths, best first."""
        return [candidate.mapping for candidate in self.candidates]

    @property
    def n_candidates(self) -> int:
        """Number of valid complete mappings found."""
        return len(self.candidates)

    def best(self) -> RankedMapping | None:
        """The top-ranked candidate, or ``None`` when there is none."""
        return self.candidates[0] if self.candidates else None


class TPWEngine:
    """Sample search over one source database.

    Parameters
    ----------
    db:
        The source database instance.
    config:
        Search knobs; defaults to the paper's settings (PMNJ = 2).
    model:
        The noisy-containment error model; defaults to token
        containment, mirroring the paper's MySQL full-text setup.
    """

    def __init__(
        self,
        db: Database,
        config: TPWConfig | None = None,
        model: ErrorModel | None = None,
    ) -> None:
        self.db = db
        self.config = config or TPWConfig()
        self.model = model or default_error_model()
        self.graph = SchemaGraph(db.schema)

    # ------------------------------------------------------------------

    def search(self, sample_tuple: Sequence[str]) -> SearchResult:
        """Run the full TPW sample search for one sample tuple.

        Returns every valid complete mapping path within the configured
        search family, ranked.  An empty ``candidates`` list means no
        project-join mapping can produce the sample tuple — typically
        because one sample occurs nowhere in the source (check
        ``result.location_map.empty_keys()``).
        """
        samples = tuple(str(sample) for sample in sample_tuple)
        if not samples:
            raise SessionError("the sample tuple must have at least one column")
        stats = SearchStats()
        started = time.perf_counter()

        phase = time.perf_counter()
        location_map = build_location_map(self.db, samples, self.model)
        stats.location_hits = {
            key: len(location_map.attributes_of(key)) for key in range(len(samples))
        }
        stats.timings["locate"] = time.perf_counter() - phase

        if location_map.empty_keys():
            stats.timings["total"] = time.perf_counter() - started
            return SearchResult(samples, [], location_map, stats)

        if len(samples) == 1:
            candidates = self._search_single_column(samples, location_map, stats)
            stats.valid_complete_mappings = len(candidates)
            stats.timings["total"] = time.perf_counter() - started
            return SearchResult(samples, candidates, location_map, stats)

        phase = time.perf_counter()
        pmpm = generate_pairwise_mapping_paths(self.graph, location_map, self.config)
        stats.pairwise_mapping_paths = count_pairwise_paths(pmpm)
        stats.timings["pairwise"] = time.perf_counter() - phase

        phase = time.perf_counter()
        ptpm, valid_pairwise = create_pairwise_tuple_paths(
            self.db, pmpm, samples, self.model, self.config
        )
        stats.pairwise_valid_mapping_paths = valid_pairwise
        stats.timings["instantiate"] = time.perf_counter() - phase

        phase = time.perf_counter()
        complete = weave_complete_tuple_paths(
            ptpm, len(samples), self.config, stats
        )
        stats.timings["weave"] = time.perf_counter() - phase

        phase = time.perf_counter()
        candidates = rank_mappings(
            self.db, complete, samples, self.model, self.config.ranking
        )
        stats.valid_complete_mappings = len(candidates)
        stats.timings["rank"] = time.perf_counter() - phase

        stats.timings["total"] = time.perf_counter() - started
        return SearchResult(samples, candidates, location_map, stats)

    # ------------------------------------------------------------------

    def _search_single_column(
        self,
        samples: tuple[str, ...],
        location_map: LocationMap,
        stats: SearchStats,
    ) -> list[RankedMapping]:
        """Target size one: each containing attribute is a candidate."""
        tuple_paths: list[TuplePath] = []
        for relation, attribute in location_map.attributes_of(0):
            mapping = single_relation_mapping(relation, {0: attribute})
            tuple_paths.extend(
                instantiate_mapping_path(
                    self.db,
                    mapping,
                    samples,
                    self.model,
                    limit=self.config.max_tuple_paths_per_mapping,
                )
            )
        stats.complete_tuple_paths = len(tuple_paths)
        return rank_mappings(
            self.db, tuple_paths, samples, self.model, self.config.ranking
        )
