"""Tests for the naive candidate-network baseline (Section 6.3)."""

import pytest

from repro.config import NaiveConfig, TPWConfig
from repro.core.naive import NaiveEngine
from repro.core.tpw import TPWEngine
from repro.exceptions import SearchBudgetExceeded, SessionError


@pytest.fixture()
def naive(running_db):
    return NaiveEngine(running_db)


class TestNaiveSearch:
    def test_finds_valid_mappings(self, naive):
        result = naive.search(("Harry Potter", "David Yates"))
        assert len(result.valid_mappings) == 1
        edge_fks = {edge.fk_name for edge in result.valid_mappings[0].tree.edges}
        assert "direct_mid" in edge_fks

    def test_enumerates_more_than_valid(self, naive):
        result = naive.search(("Harry Potter", "David Yates"))
        # direct and write variants enumerated; only direct validates
        assert result.enumerated_complete > len(result.valid_mappings)

    def test_validation_queries_counted(self, naive):
        result = naive.search(("Avatar", "James Cameron"))
        assert result.validation_queries == result.enumerated_complete

    def test_single_column(self, naive):
        result = naive.search(("New Zealand",))
        assert len(result.valid_mappings) == 1

    def test_absent_sample(self, naive):
        result = naive.search(("Avatar", "Nobody Anywhere"))
        assert result.valid_mappings == []
        assert result.enumerated_complete == 0

    def test_empty_tuple_rejected(self, naive):
        with pytest.raises(SessionError):
            naive.search(())

    def test_timings_present(self, naive):
        result = naive.search(("Avatar", "James Cameron"))
        assert set(result.timings) >= {"locate", "enumerate", "validate", "total"}


class TestBudget:
    def test_budget_exceeded(self, running_db):
        tight = NaiveEngine(running_db, NaiveConfig(max_candidates=1))
        with pytest.raises(SearchBudgetExceeded):
            tight.search(("Avatar", "James Cameron", "Lightstorm Co."))

    def test_zero_budget_means_unbounded(self, running_db):
        unbounded = NaiveEngine(running_db, NaiveConfig(max_candidates=0))
        result = unbounded.search(("Avatar", "James Cameron"))
        assert result.valid_mappings


class TestAgreementWithTPW:
    """The naive baseline validates exactly the mappings exhaustive TPW
    finds — the two engines share the search family but check validity
    through entirely different code paths (database queries vs tuple
    weaving)."""

    SAMPLES = [
        ("Avatar", "James Cameron"),
        ("Harry Potter", "David Yates"),
        ("Big Fish", "Tim Burton"),
        ("Avatar", "James Cameron", "Lightstorm Co."),
        ("Harry Potter", "J. K. Rowling", "Warner Films"),
        ("Ed Wood", "Ed Wood"),
    ]

    @pytest.mark.parametrize("samples", SAMPLES, ids=["-".join(s) for s in SAMPLES])
    def test_same_valid_mappings(self, running_db, samples):
        tpw = TPWEngine(running_db, TPWConfig(exhaustive_weave=True))
        naive = NaiveEngine(running_db)
        tpw_result = {m.signature() for m in tpw.search(samples).mappings}
        naive_result = {
            m.signature() for m in naive.search(samples).valid_mappings
        }
        assert tpw_result == naive_result

    def test_greedy_subset_of_naive(self, running_db):
        samples = ("Avatar", "James Cameron", "Lightstorm Co.")
        tpw = TPWEngine(running_db)  # greedy default
        naive = NaiveEngine(running_db)
        tpw_result = {m.signature() for m in tpw.search(samples).mappings}
        naive_result = {
            m.signature() for m in naive.search(samples).valid_mappings
        }
        assert tpw_result <= naive_result
