"""Tests for the bounded worker pool: deadlines, backpressure, spans."""

import threading
import time

import pytest

from repro import obs
from repro.exceptions import DeadlineExceeded, ServiceOverloadedError
from repro.service.workers import WorkerPool


@pytest.fixture
def pool():
    pool = WorkerPool(workers=1, queue_size=2)
    yield pool
    pool.shutdown()


class TestExecution:
    def test_run_returns_the_result(self, pool):
        assert pool.run(lambda: 21 * 2, timeout_s=5.0) == 42

    def test_exceptions_reach_the_waiter(self, pool):
        with pytest.raises(ValueError, match="boom"):
            pool.run(self._raise, timeout_s=5.0)

    @staticmethod
    def _raise():
        raise ValueError("boom")

    def test_jobs_run_concurrently_with_the_caller(self, pool):
        gate = threading.Event()
        job = pool.submit(gate.wait, timeout_s=5.0)
        gate.set()
        assert job.wait() is True


class TestDeadlines:
    def test_running_past_the_deadline_raises_504_side(self, pool):
        release = threading.Event()
        try:
            with pytest.raises(DeadlineExceeded):
                pool.run(release.wait, timeout_s=0.05)
        finally:
            release.set()

    def test_queued_expired_job_never_runs(self, pool):
        release = threading.Event()
        ran = []
        blocker = pool.submit(release.wait, timeout_s=5.0)
        doomed = pool.submit(lambda: ran.append(True), timeout_s=0.05)
        with pytest.raises(DeadlineExceeded):
            doomed.wait()
        release.set()
        blocker.wait()
        # The worker is free now; give it a moment to drain the queue.
        assert doomed.done.wait(timeout=2.0)
        assert ran == []
        assert doomed.cancelled

    def test_finish_wins_a_race_with_the_deadline(self, pool):
        # A job that completes just as the waiter times out must still
        # deliver its result (the wait() re-check path).
        job = pool.submit(lambda: "done", timeout_s=5.0)
        assert job.wait() == "done"


class TestBackpressure:
    def test_full_queue_raises_overloaded(self, pool):
        release = threading.Event()
        jobs = [pool.submit(release.wait, timeout_s=5.0)]
        try:
            # Worker holds job 0; fill the queue behind it.  The worker
            # may have already dequeued one, so saturate with retries.
            deadline = time.monotonic() + 2.0
            with pytest.raises(ServiceOverloadedError) as info:
                while time.monotonic() < deadline:
                    jobs.append(pool.submit(release.wait, timeout_s=5.0))
            assert info.value.retry_after_s > 0
        finally:
            release.set()
            for job in jobs:
                job.wait()

    def test_submit_after_shutdown_is_overloaded(self):
        pool = WorkerPool(workers=1, queue_size=1)
        pool.shutdown()
        with pytest.raises(ServiceOverloadedError):
            pool.submit(lambda: None, timeout_s=1.0)


class TestCancellationRaces:
    def test_cancel_between_enqueue_and_start_never_runs(self, pool):
        release = threading.Event()
        ran = []
        blocker = pool.submit(release.wait, timeout_s=5.0)
        victim = pool.submit(lambda: ran.append(True), timeout_s=5.0)
        # The worker is busy with the blocker, so the victim sits in
        # the queue: this cancel lands between dequeue and start.
        assert victim.cancel() is True
        release.set()
        blocker.wait()
        assert victim.done.wait(timeout=2.0)
        assert ran == []
        with pytest.raises(DeadlineExceeded):
            victim.wait()

    def test_cancel_after_start_loses_the_race(self, pool):
        started = threading.Event()
        release = threading.Event()

        def work():
            started.set()
            release.wait()
            return "finished"

        job = pool.submit(work, timeout_s=5.0)
        assert started.wait(timeout=2.0)
        # Too late: the worker already claimed the job.
        assert job.cancel() is False
        release.set()
        assert job.wait() == "finished"

    def test_deadline_mid_job_releases_the_slot(self, pool):
        release = threading.Event()
        try:
            with pytest.raises(DeadlineExceeded):
                pool.run(release.wait, timeout_s=0.05)
        finally:
            release.set()
        # The worker finishes the abandoned job and picks up new work:
        # the slot was released, not leaked.
        assert pool.run(lambda: "alive", timeout_s=5.0) == "alive"

    def test_session_lock_is_released_after_a_deadline(self, pool):
        # Mirrors put_cell: the job holds a lock while it runs.  When
        # the waiter gives up, the lock must come free once the worker
        # finishes — a later request on the same session cannot hang.
        lock = threading.RLock()
        release = threading.Event()

        def slow():
            with lock:
                release.wait()

        try:
            with pytest.raises(DeadlineExceeded):
                pool.run(slow, timeout_s=0.05)
        finally:
            release.set()

        def fast():
            with lock:
                return "unblocked"

        assert pool.run(fast, timeout_s=5.0) == "unblocked"


class TestSpanParentage:
    def test_worker_spans_nest_under_the_submitting_span(self, pool):
        with obs.scoped() as tracer:

            def work():
                with tracer.span("job.inner"):
                    return "ok"

            with tracer.span("request.root") as root:
                assert pool.run(work, timeout_s=5.0) == "ok"
        assert [span.name for span in root.children] == ["job.inner"]
        assert [span.name for span in tracer.finished] == ["request.root"]

    def test_no_open_span_means_worker_roots(self, pool):
        with obs.scoped() as tracer:

            def work():
                with tracer.span("job.orphan"):
                    return None

            pool.run(work, timeout_s=5.0)
        assert [span.name for span in tracer.finished] == ["job.orphan"]
