"""Materialising a converged mapping: the data-exchange step.

A schema mapping "transforms a source database instance into an
instance that obeys a target schema" (Section 1).  Once the session has
converged, :func:`materialize_mapping` performs that transformation,
producing a new single-relation :class:`~repro.relational.database.Database`
holding the target instance — ready for CSV export or the sqlite
mirror.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.mapping_path import MappingPath
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


def target_schema_for(
    mapping: MappingPath,
    source: Database,
    relation_name: str,
    column_names: Sequence[str],
) -> DatabaseSchema:
    """Derive the target relation's schema from the mapping.

    Each target column inherits the data type of the source attribute
    it projects; column order follows the target-column indexes.
    """
    keys = sorted(mapping.projections)
    if len(column_names) != len(keys):
        raise QueryError(
            f"expected {len(keys)} column names, got {len(column_names)}"
        )
    attributes = []
    for name, key in zip(column_names, keys):
        relation, attribute = mapping.attribute_of(key)
        source_attribute = source.schema.relation(relation).attribute(attribute)
        attributes.append(Attribute(name, source_attribute.data_type))
    return DatabaseSchema(
        [RelationSchema(relation_name, tuple(attributes))]
    )


def materialize_mapping(
    mapping: MappingPath,
    source: Database,
    *,
    relation_name: str = "target",
    column_names: Sequence[str] | None = None,
    distinct: bool = False,
    limit: int = 0,
) -> Database:
    """Execute ``mapping`` over ``source`` into a fresh target database.

    Parameters
    ----------
    mapping:
        The (typically converged) mapping path.
    source:
        The source instance.
    relation_name:
        Name of the single target relation.
    column_names:
        Target column names; defaults to ``col<key>``.
    distinct:
        Drop duplicate target tuples (a project-join is a bag by
        default).
    limit:
        Cap on produced rows; ``0`` means all.
    """
    keys = sorted(mapping.projections)
    names = (
        list(column_names)
        if column_names is not None
        else [f"col{key}" for key in keys]
    )
    schema = target_schema_for(mapping, source, relation_name, names)
    target = Database(schema, name=f"{source.name}-target")
    seen: set[tuple[object, ...]] = set()
    for row in mapping.execute(source, limit=0):
        if distinct:
            if row in seen:
                continue
            seen.add(row)
        target.insert(relation_name, row)
        if limit and len(target.table(relation_name)) >= limit:
            break
    return target
