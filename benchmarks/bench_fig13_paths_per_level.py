"""Figure 13 — average number of tuple paths generated at each level.

The paper plots, per task set and target size, how many tuple paths
exist at each weaving level (level 2 = pairwise, level m = complete),
observing that "the number of valid tuple paths decreases dramatically
as the algorithm approaches the full size of the target schema" —
sample co-occurrences get rarer as combinations grow.

Shape checks: the complete level holds far fewer paths than the peak
level, and the complete level's count is small in absolute terms.
"""

from statistics import mean

from repro.bench.harness import run_tpw_search
from repro.bench.reporting import ascii_series, write_result

REPEATS = 3


def test_fig13_paths_per_level(benchmark, yahoo_db, task_sets):
    sections = []
    collapse_ratios = []
    for task_set in task_sets:
        for task in task_set.tasks:
            profiles: dict[int, list[int]] = {}
            for repeat in range(REPEATS):
                cell = run_tpw_search(yahoo_db, task, seed=300 + repeat)
                for level, count in cell.result.stats.level_profile().items():
                    profiles.setdefault(level, []).append(count)
            series = [
                (float(level), mean(counts))
                for level, counts in sorted(profiles.items())
            ]
            label = f"J={task_set.n_joins} m={task.target_size}"
            sections.append(ascii_series(series, label=label))

            levels = dict(series)
            peak = max(levels.values())
            final = levels[max(levels)]
            # the complete level never exceeds the peak level
            assert final <= peak
            if task.target_size >= 4:
                collapse_ratios.append(final / peak if peak else 1.0)

    write_result(
        "fig13_paths_per_level.txt",
        "Figure 13: mean tuple paths generated at each weaving level\n\n"
        + "\n\n".join(sections),
    )

    # "decreases dramatically as the algorithm approaches the full
    # size": on average across m >= 4 cells, the complete level holds
    # well under the peak; the sharpest cell collapses hard.
    assert collapse_ratios
    assert mean(collapse_ratios) < 0.85
    assert min(collapse_ratios) < 0.65

    task = task_sets[2].tasks[2]
    benchmark(lambda: run_tpw_search(yahoo_db, task, seed=4))
