"""Unit tests for sample pruning (Section 5)."""

import pytest

from repro.core.pruning import prune_by_attribute, prune_by_structure
from repro.core.tpw import TPWEngine


@pytest.fixture()
def avatar_candidates(running_db):
    """The direct & write candidates from the Avatar sample tuple."""
    result = TPWEngine(running_db).search(("Avatar", "James Cameron"))
    assert result.n_candidates == 2
    return result.mappings


class TestPruneByAttribute:
    def test_keeps_consistent_candidates(self, running_db, avatar_candidates):
        kept = prune_by_attribute(running_db, avatar_candidates, 0, "Big Fish")
        assert len(kept) == 2  # both map column 0 to movie.title

    def test_drops_contradicted_attribute(self, running_db):
        # 'Ed Wood' search yields title / name / logline variants
        result = TPWEngine(running_db).search(("Ed Wood",))
        kept = prune_by_attribute(running_db, result.mappings, 0, "Titanic")
        attributes = {m.attribute_of(0) for m in kept}
        # Titanic only appears in movie.title
        assert attributes == {("movie", "title")}

    def test_unknown_sample_empties(self, running_db, avatar_candidates):
        kept = prune_by_attribute(
            running_db, avatar_candidates, 1, "Nobody Anywhere"
        )
        assert kept == []

    def test_unprojected_key_keeps_candidate(self, running_db, avatar_candidates):
        kept = prune_by_attribute(running_db, avatar_candidates, 9, "whatever")
        assert len(kept) == len(avatar_candidates)

    def test_empty_candidates(self, running_db):
        assert prune_by_attribute(running_db, [], 0, "x") == []


class TestPruneByStructure:
    def test_example_7(self, running_db, avatar_candidates):
        """Big Fish + Tim Burton kills the write variant (Example 7)."""
        kept = prune_by_structure(
            running_db,
            avatar_candidates,
            {0: "Big Fish", 1: "Tim Burton"},
        )
        assert len(kept) == 1
        edge_fks = {edge.fk_name for edge in kept[0].tree.edges}
        assert "direct_mid" in edge_fks

    def test_consistent_row_keeps_both(self, running_db, avatar_candidates):
        # Ed Wood both wrote and directed Ed Wood... that's Tim Burton's
        # movie here; use Titanic (Cameron directed + wrote).
        kept = prune_by_structure(
            running_db,
            avatar_candidates,
            {0: "Titanic", 1: "James Cameron"},
        )
        assert len(kept) == 2

    def test_empty_row_keeps_all(self, running_db, avatar_candidates):
        kept = prune_by_structure(running_db, avatar_candidates, {})
        assert len(kept) == len(avatar_candidates)

    def test_single_sample_still_prunes_structurally(self, running_db,
                                                     avatar_candidates):
        # with one sample the structure query degenerates to attribute
        # containment along the mapping; candidates survive
        kept = prune_by_structure(running_db, avatar_candidates, {0: "Avatar"})
        assert len(kept) == 2

    def test_impossible_combination_empties(self, running_db, avatar_candidates):
        kept = prune_by_structure(
            running_db,
            avatar_candidates,
            {0: "Avatar", 1: "David Yates"},  # Yates did not direct Avatar
        )
        assert kept == []


class TestGoalSurvivalInvariant:
    """Samples drawn from a mapping's own output can never prune it."""

    def test_goal_survives_own_rows(self, running_db):
        engine = TPWEngine(running_db)
        result = engine.search(("Avatar", "James Cameron"))
        for candidate in result.candidates:
            rows = candidate.mapping.execute(running_db, limit=10)
            for row in rows:
                if any(value is None for value in row):
                    continue
                samples = {index: str(value) for index, value in enumerate(row)}
                kept = prune_by_structure(running_db, [candidate.mapping], samples)
                assert kept, f"goal pruned by its own row {row}"
                for index, sample in samples.items():
                    kept = prune_by_attribute(
                        running_db, [candidate.mapping], index, sample
                    )
                    assert kept
