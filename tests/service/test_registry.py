"""Tests for the shared dataset registry and the LocateSample cache."""

import pytest

from repro.core.location import build_location_map
from repro.core.tpw import TPWEngine
from repro.exceptions import ServiceConfigError
from repro.service.registry import (
    DatasetRegistry,
    LocationCache,
    _build_dataset,
    normalize_sample,
)


class TestDatasetRegistry:
    def test_builds_each_dataset_exactly_once(self, running_db):
        builds = []

        def builder(name, scale):
            builds.append((name, scale))
            return running_db

        registry = DatasetRegistry(scale=25, builder=builder)
        first = registry.get("running")
        second = registry.get("running")
        assert first is second is running_db
        assert builds == [("running", 25)]

    def test_preload_and_loaded(self, running_db):
        registry = DatasetRegistry(builder=lambda name, _s: running_db)
        assert registry.loaded() == ()
        registry.preload(["b", "a"])
        assert registry.loaded() == ("a", "b")

    def test_get_warms_the_shared_indexes(self, running_db):
        registry = DatasetRegistry(builder=lambda _n, _s: running_db)
        db = registry.get("running")
        # Every text index exists up-front: lookups never mutate the db.
        for relation, attribute in db.schema.text_attribute_pairs():
            assert (relation, attribute) in db._text_indexes  # noqa: SLF001

    def test_unknown_dataset_is_a_config_error(self):
        with pytest.raises(ServiceConfigError, match="bogus"):
            _build_dataset("bogus", 10)


class TestNormalizeSample:
    def test_collapses_whitespace_runs(self):
        assert normalize_sample("  Big \t Fish \n") == "Big Fish"

    def test_preserves_case(self):
        # The error model decides case sensitivity; the key must not.
        assert normalize_sample("Avatar") != normalize_sample("avatar")


class TestLocationCache:
    @pytest.fixture
    def model(self, running_db):
        return TPWEngine(running_db).model

    def test_miss_then_hit(self, running_db, model):
        cache = LocationCache(max_entries=16)
        first = cache.entries_for(running_db, "Avatar", model)
        second = cache.entries_for(running_db, "Avatar", model)
        assert first == second
        assert ("movie", "title") in first
        assert cache.stats() == {
            "hits": 1, "misses": 1, "size": 1, "max_entries": 16,
        }

    def test_whitespace_variants_share_one_entry(self, running_db, model):
        cache = LocationCache(max_entries=16)
        cache.entries_for(running_db, "Big Fish", model)
        cache.entries_for(running_db, "  Big \t Fish ", model)
        assert cache.stats()["size"] == 1
        assert cache.stats()["hits"] == 1

    def test_lru_evicts_oldest(self, running_db, model):
        cache = LocationCache(max_entries=2)
        cache.entries_for(running_db, "Avatar", model)
        cache.entries_for(running_db, "Big Fish", model)
        cache.entries_for(running_db, "Tim Burton", model)  # evicts Avatar
        assert cache.stats()["size"] == 2
        cache.entries_for(running_db, "Avatar", model)
        assert cache.stats()["misses"] == 4

    def test_location_map_matches_uncached_algorithm(self, running_db, model):
        cache = LocationCache()
        samples = ("Avatar", "James Cameron")
        cached = cache.location_map(running_db, samples, model)
        direct = build_location_map(running_db, samples, model)
        assert cached.samples == direct.samples
        assert cached.entries == direct.entries
        # And again, now fully from cache.
        again = cache.location_map(running_db, samples, model)
        assert again.entries == direct.entries
        assert cache.stats()["hits"] == 2

    def test_clear_keeps_counters(self, running_db, model):
        cache = LocationCache()
        cache.entries_for(running_db, "Avatar", model)
        cache.clear()
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["misses"] == 1

    def test_engine_uses_the_cache(self, running_db):
        cache = LocationCache()
        engine = TPWEngine(running_db, location_cache=cache)
        engine.search(("Avatar", "James Cameron"))
        assert cache.stats()["misses"] == 2
        engine.search(("Avatar", "James Cameron"))
        assert cache.stats()["hits"] == 2
