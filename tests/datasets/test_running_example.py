"""Tests pinning the hand-written running example to the paper's facts."""

from repro.datasets.running_example import build_running_example


class TestRunningExampleFacts:
    def test_integrity(self, running_db):
        running_db.validate_referential_integrity()

    def test_cameron_wrote_and_directed_avatar(self, running_db):
        """Needed for Example 2's two-candidate ambiguity."""
        directs = set(map(tuple, running_db.table("direct")))
        writes = set(map(tuple, running_db.table("write")))
        assert (1, 1) in directs and (1, 1) in writes

    def test_yates_directed_but_not_wrote_harry_potter(self, running_db):
        """Needed for Example 1's convergence."""
        directs = set(map(tuple, running_db.table("direct")))
        writes = set(map(tuple, running_db.table("write")))
        assert (3, 3) in directs and (3, 3) not in writes

    def test_burton_did_not_write_big_fish(self, running_db):
        """Needed for Example 7's structural pruning."""
        writes = set(map(tuple, running_db.table("write")))
        assert (2, 2) not in writes

    def test_ed_wood_is_title_and_name(self, running_db):
        titles = {row[1] for row in running_db.table("movie")}
        names = {row[1] for row in running_db.table("person")}
        assert "Ed Wood" in titles and "Ed Wood" in names

    def test_rebuild_is_identical(self, running_db):
        fresh = build_running_example()
        for relation in running_db.schema.relation_names:
            assert list(fresh.table(relation)) == list(running_db.table(relation))
