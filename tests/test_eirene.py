"""Tests for the Eirene-style example-fitting comparator."""

import pytest

from repro.core.session import MappingSession
from repro.datasets.running_example import running_example_schema
from repro.eirene import ExamplePair, authoring_cost, fit_mappings
from repro.exceptions import DatasetError


def avatar_fragment(include_write: bool = True) -> dict:
    """A hand-authored fragment: Avatar, Cameron, their credit links."""
    rows = {
        "movie": [(1, "Avatar", None)],
        "person": [(1, "James Cameron")],
        "direct": [(1, 1)],
    }
    if include_write:
        rows["write"] = [(1, 1)]
    return rows


class TestExamplePair:
    def test_cell_counts(self):
        pair = ExamplePair(
            source_rows=avatar_fragment(),
            target_rows=(("Avatar", "James Cameron"),),
        )
        # movie: 2 non-null + person: 2 + direct: 2 + write: 2 = 8
        assert pair.source_cell_count() == 8
        assert pair.target_cell_count() == 2
        assert pair.cell_count() == 10

    def test_needs_target_rows(self):
        with pytest.raises(DatasetError):
            ExamplePair(source_rows={}, target_rows=())

    def test_target_arity_consistent(self):
        with pytest.raises(DatasetError):
            ExamplePair(
                source_rows={},
                target_rows=(("a", "b"), ("c",)),
            )

    def test_to_database(self):
        pair = ExamplePair(
            source_rows=avatar_fragment(),
            target_rows=(("Avatar", "James Cameron"),),
        )
        db = pair.to_database(running_example_schema())
        assert len(db.table("movie")) == 1
        db.validate_referential_integrity()


class TestFitting:
    def test_ambiguous_single_example(self):
        """Cameron both directed and wrote: two fitting mappings."""
        pair = ExamplePair(
            source_rows=avatar_fragment(include_write=True),
            target_rows=(("Avatar", "James Cameron"),),
        )
        fitting = fit_mappings(running_example_schema(), [pair])
        fks = {
            frozenset(edge.fk_name for edge in mapping.tree.edges)
            for mapping in fitting
        }
        assert frozenset({"direct_mid", "direct_pid"}) in fks
        assert frozenset({"write_mid", "write_pid"}) in fks

    def test_second_example_disambiguates(self):
        """Adding a director-only example pins the direct variant —
        Eirene's refinement loop, mechanically."""
        ambiguous = ExamplePair(
            source_rows=avatar_fragment(include_write=True),
            target_rows=(("Avatar", "James Cameron"),),
        )
        disambiguating = ExamplePair(
            source_rows={
                "movie": [(2, "Big Fish", None)],
                "person": [(2, "Tim Burton"), (4, "J. K. Rowling")],
                "direct": [(2, 2)],
                "write": [(2, 4)],
            },
            target_rows=(("Big Fish", "Tim Burton"),),
        )
        fitting = fit_mappings(
            running_example_schema(), [ambiguous, disambiguating]
        )
        assert len(fitting) == 1
        edge_fks = {edge.fk_name for edge in fitting[0].tree.edges}
        assert "direct_mid" in edge_fks

    def test_unfittable_examples(self):
        pair = ExamplePair(
            source_rows={"movie": [(1, "Avatar", None)]},
            target_rows=(("Avatar", "Someone Else"),),
        )
        assert fit_mappings(running_example_schema(), [pair]) == []

    def test_empty_pairs_rejected(self):
        with pytest.raises(DatasetError):
            fit_mappings(running_example_schema(), [])

    def test_mismatched_arity_rejected(self):
        one = ExamplePair(source_rows={}, target_rows=(("a",),))
        two = ExamplePair(source_rows={}, target_rows=(("a", "b"),))
        with pytest.raises(DatasetError):
            fit_mappings(running_example_schema(), [one, two])


class TestWorkflowComparison:
    """The study's keystroke claim, grounded mechanically: the same
    disambiguation costs Eirene strictly more authored cells."""

    def test_eirene_costs_more_cells_than_mweaver(self, running_db):
        pairs = [
            ExamplePair(
                source_rows=avatar_fragment(include_write=True),
                target_rows=(("Avatar", "James Cameron"),),
            ),
            ExamplePair(
                source_rows={
                    "movie": [(2, "Big Fish", None)],
                    "person": [(2, "Tim Burton"), (4, "J. K. Rowling")],
                    "direct": [(2, 2)],
                    "write": [(2, 4)],
                },
                target_rows=(("Big Fish", "Tim Burton"),),
            ),
        ]
        eirene_cells = authoring_cost(pairs)

        session = MappingSession(running_db, ["Name", "Director"])
        session.input(0, 0, "Avatar")
        session.input(0, 1, "James Cameron")
        session.input(1, 0, "Big Fish")
        session.input(1, 1, "Tim Burton")
        assert session.converged
        mweaver_cells = session.sample_count()

        # Both workflows reach the same single mapping…
        fitting = fit_mappings(running_example_schema(), pairs)
        assert len(fitting) == 1
        assert fitting[0].signature() == session.best_mapping().signature()
        # …but Eirene needed the source side too (> 2x the cells).
        assert eirene_cells["target"] == mweaver_cells
        assert eirene_cells["total"] > 2 * mweaver_cells
