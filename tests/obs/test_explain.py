"""Tests for the explain/provenance layer (``repro.obs.explain``)."""

import json

import pytest

from repro import obs
from repro.core.stats import SearchStats
from repro.core.tpw import TPWEngine
from repro.obs.explain import ExplainRecorder, NULL_EXPLAIN, SearchExplanation

#: The paper's Example 7 input: Tim Burton directed Big Fish but did
#: not write it, so the ``write`` pairwise path gets zero support.
ZERO_SUPPORT_SAMPLE = ("Big Fish", "Tim Burton")
FULL_SAMPLE = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")


@pytest.fixture()
def traced_search(running_db):
    with obs.scoped():
        result = TPWEngine(running_db).search(ZERO_SUPPORT_SAMPLE)
    return result


@pytest.fixture()
def full_search(running_db):
    with obs.scoped():
        result = TPWEngine(running_db).search(FULL_SAMPLE)
    return result


class TestSearchExplanation:
    def test_reports_pruned_and_surviving_paths(self, traced_search):
        explanation = SearchExplanation.from_span(traced_search.trace)
        kept = explanation.surviving_paths()
        pruned = explanation.pruned_paths()
        assert len(kept) >= 1 and len(pruned) >= 1
        assert all(path["support"] >= 1 for path in kept)
        zero = [p for p in pruned if p["reason"] == "zero-support"]
        assert zero and all(p["support"] == 0 for p in zero)
        assert any("write" in path["path"] for path in zero)

    def test_prune_totals_by_reason(self, traced_search):
        totals = SearchExplanation.from_span(traced_search.trace).prune_totals()
        assert set(totals) == {"zero-support", "pmnj", "dominated"}
        assert totals["zero-support"] >= 1
        assert totals["pmnj"] >= 1  # walks stop at the PMNJ=2 horizon

    def test_score_decomposition(self, traced_search):
        explanation = SearchExplanation.from_span(traced_search.trace)
        assert explanation.scores, "ranked candidates must carry scores"
        for entry in explanation.scores:
            assert entry["score"] == pytest.approx(
                entry["match_term"] - entry["join_term"]
            )
            assert entry["support"] >= 1
        ranks = [entry["rank"] for entry in explanation.scores]
        assert ranks == sorted(ranks)

    def test_weave_fuse_statistics(self, full_search):
        explanation = SearchExplanation.from_span(full_search.trace)
        assert explanation.levels, "multi-column search must report levels"
        for level in explanation.levels:
            assert level["dominated"] >= 0
        # The 4-column running-example search weaves the same complete
        # path through several pair orders: domination must fire.
        assert explanation.prune_totals()["dominated"] >= 1

    def test_from_span_rejects_other_spans(self, traced_search):
        child = traced_search.trace.children[0]
        with pytest.raises(ValueError, match="tpw.search"):
            SearchExplanation.from_span(child)

    def test_search_id_on_trace_and_result(self, traced_search):
        assert traced_search.search_id > 0
        assert (
            traced_search.trace.attributes["search_id"]
            == traced_search.search_id
        )


class TestFromTrace:
    def test_single_search(self, traced_search):
        explanation = SearchExplanation.from_trace([traced_search.trace])
        assert explanation.search_id == traced_search.search_id

    def test_multi_search_requires_id(self, running_db):
        engine = TPWEngine(running_db)
        with obs.scoped() as tracer:
            first = engine.search(ZERO_SUPPORT_SAMPLE)
            second = engine.search(FULL_SAMPLE)
        with pytest.raises(ValueError, match="pass search_id"):
            SearchExplanation.from_trace(tracer.finished)
        explanation = SearchExplanation.from_trace(
            tracer.finished, search_id=second.search_id
        )
        assert explanation.columns == len(FULL_SAMPLE)
        assert SearchExplanation.from_trace(
            tracer.finished, search_id=first.search_id
        ).columns == len(ZERO_SUPPORT_SAMPLE)

    def test_unknown_id(self, traced_search):
        with pytest.raises(ValueError, match="no tpw.search"):
            SearchExplanation.from_trace([traced_search.trace], search_id=999)

    def test_empty_trace(self):
        with pytest.raises(ValueError, match="no tpw.search"):
            SearchExplanation.from_trace([])


class TestJsonlRoundTrip:
    def test_explain_survives_jsonl(self, traced_search):
        before = SearchExplanation.from_span(traced_search.trace)
        text = obs.to_jsonl([traced_search.trace])
        roots, _metrics = obs.parse_jsonl(text)
        after = SearchExplanation.from_trace(roots)
        assert after.paths == before.paths
        assert after.scores == before.scores
        assert after.levels == before.levels
        assert after.pmnj_frontier == before.pmnj_frontier
        assert after.prune_totals() == before.prune_totals()

    def test_stats_from_trace_matches(self, traced_search):
        text = obs.to_jsonl([traced_search.trace])
        roots, _metrics = obs.parse_jsonl(text)
        assert (
            SearchStats.from_trace(roots, search_id=traced_search.search_id)
            == traced_search.stats
        )


class TestRenderers:
    def test_text_report(self, traced_search):
        text = SearchExplanation.from_span(traced_search.trace).to_text()
        assert "pruned (zero-support)" in text
        assert "kept" in text
        assert "score decomposition" in text

    def test_json_report(self, traced_search):
        payload = json.loads(
            SearchExplanation.from_span(traced_search.trace).to_json()
        )
        assert payload["prune_totals"]["zero-support"] >= 1
        assert payload["paths"] and payload["scores"]

    def test_html_report_is_single_file(self, traced_search):
        html = SearchExplanation.from_span(traced_search.trace).to_html()
        assert html.startswith("<!doctype html>")
        assert "zero-support" in html
        assert "src=" not in html and "href=" not in html  # no external assets


class TestRecorder:
    def test_caps_and_counts_drops(self, running_db):
        from repro.core.mapping_path import single_relation_mapping

        recorder = ExplainRecorder(limit=2)
        mapping = single_relation_mapping("movie", {0: "title"})
        for _ in range(5):
            recorder.pairwise_decision((0, 1), mapping, "kept")
        with obs.scoped() as tracer:
            with tracer.span("tpw.pairwise") as span:
                recorder.annotate_pairwise(span)
        assert len(span.attributes["decisions"]) == 2
        assert span.attributes["decisions_dropped"] == 3

    def test_disabled_search_records_nothing(self, running_db):
        result = TPWEngine(running_db).search(ZERO_SUPPORT_SAMPLE)
        assert result.trace is None
        assert result.n_candidates == 1  # behavior identical untraced

    def test_null_recorder_is_inert(self):
        assert NULL_EXPLAIN.enabled is False
        NULL_EXPLAIN.pairwise_decision((0, 1), None, "kept")
        NULL_EXPLAIN.score(1, None, score=0, match_mean=0,
                           match_term=0, join_term=0, support=0)
        NULL_EXPLAIN.annotate_pairwise(None)
        NULL_EXPLAIN.annotate_rank(None)


class TestSessionPruneProvenance:
    def test_prune_decisions_on_session_spans(self, running_db):
        from repro.core.session import MappingSession

        with obs.scoped() as tracer:
            session = MappingSession(running_db, ["Name", "Director"])
            session.input(0, 0, "Avatar")
            session.input(0, 1, "James Cameron")
            session.input(1, 0, "Big Fish")
            session.input(1, 1, "Tim Burton")
        prune_spans = [
            span
            for root in tracer.finished
            for span in root.walk()
            if span.name in ("session.prune", "session.replay")
            and span.attributes.get("decisions")
        ]
        assert prune_spans, "session pruning must leave decision records"
        decisions = [
            record
            for span in prune_spans
            for record in span.attributes["decisions"]
        ]
        assert any(record["decision"] == "pruned" for record in decisions)
        assert all(
            record["reason"] in (None, "attribute", "structure")
            for record in decisions
        )
