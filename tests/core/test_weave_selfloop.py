"""Weaving and searching across self-referencing foreign keys.

A relation that references itself (an org chart, a thread of replies)
exercises the trickiest part of edge orientation: both endpoints of an
edge live in the same relation, so only ``source_vertex`` can tell the
two directions apart.
"""

import pytest

from repro.core.tpw import TPWEngine
from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from repro.relational.types import DataType

_INT = DataType.INTEGER


@pytest.fixture(scope="module")
def orgchart_db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema(
                "employee",
                (
                    Attribute("eid", _INT, fulltext=False),
                    Attribute("name"),
                    Attribute("manager", _INT, fulltext=False),
                ),
                ("eid",),
                (
                    ForeignKey(
                        "employee_manager",
                        "employee",
                        ("manager",),
                        "employee",
                        ("eid",),
                    ),
                ),
            )
        ]
    )
    db = Database(schema, name="orgchart")
    db.insert("employee", (1, "Ada Root", None))
    db.insert("employee", (2, "Ben Middle", 1))
    db.insert("employee", (3, "Cara Leaf", 2))
    db.insert("employee", (4, "Dan Leaf", 2))
    db.validate_referential_integrity()
    return db


class TestSelfLoopSearch:
    def test_employee_manager_pair(self, orgchart_db):
        result = TPWEngine(orgchart_db).search(("Cara Leaf", "Ben Middle"))
        assert result.n_candidates >= 1
        best = result.best().mapping
        assert set(best.tree.vertices.values()) == {"employee"}
        assert best.n_joins == 1
        assert all(
            edge.fk_name == "employee_manager" for edge in best.tree.edges
        )

    def test_direction_symmetry(self, orgchart_db):
        """(report, manager) and (manager, report) both resolve — the
        projection ends swap across the same self-loop edge."""
        down = TPWEngine(orgchart_db).search(("Ben Middle", "Cara Leaf"))
        up = TPWEngine(orgchart_db).search(("Cara Leaf", "Ben Middle"))
        assert down.n_candidates >= 1
        assert up.n_candidates >= 1

    def test_two_hop_chain(self, orgchart_db):
        """Grandmanager: two traversals of the same self loop."""
        result = TPWEngine(orgchart_db).search(("Cara Leaf", "Ada Root"))
        two_hop = [m for m in result.mappings if m.n_joins == 2]
        assert two_hop, "expected the manager-of-manager chain"

    def test_siblings_found_via_shared_manager(self, orgchart_db):
        """Cara and Dan share a manager: the down-up walk through the
        self loop is a legitimate two-join mapping and must be found
        (self loops are exempt from the no-U-turn rule because each
        traversal direction binds different rows)."""
        result = TPWEngine(orgchart_db).search(("Cara Leaf", "Dan Leaf"))
        assert result.n_candidates >= 1
        assert all(m.n_joins == 2 for m in result.mappings)
        support = result.best().tuple_paths[0]
        # the middle vertex binds the shared manager (row 1, Ben)
        middle = next(
            vertex
            for vertex in support.rows
            if support.tree.degree(vertex) == 2
        )
        assert support.tuple_at(middle) == ("employee", 1)

    def test_siblings_unreachable_with_tight_bound(self, orgchart_db):
        """PMNJ=1 only expresses direct manager/report pairs."""
        from repro.config import TPWConfig

        engine = TPWEngine(orgchart_db, TPWConfig(pmnj=1))
        assert engine.search(("Cara Leaf", "Dan Leaf")).n_candidates == 0
        assert engine.search(("Cara Leaf", "Ben Middle")).n_candidates >= 1
