"""Sample-occurrence location (Algorithm 1, ``LocateSample``).

For each sample string, the location map records every source attribute
that contains it, nested by relation so that pairwise path generation
can ask "which samples does relation ``R`` contain?" in O(1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.relational.database import Database
from repro.text.errors import ErrorModel, default_error_model


@dataclass
class LocationMap:
    """Where each sample occurs in the source database.

    ``entries[i]`` is the set of ``(relation, attribute)`` pairs
    containing sample ``i`` (0-based target column index);
    ``by_relation[i]`` nests the same information by relation name.
    """

    samples: tuple[str, ...]
    entries: dict[int, tuple[tuple[str, str], ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_relation: dict[int, dict[str, tuple[str, ...]]] = {}
        for key, pairs in self.entries.items():
            nested: dict[str, list[str]] = {}
            for relation, attribute in pairs:
                nested.setdefault(relation, []).append(attribute)
            self.by_relation[key] = {
                relation: tuple(attributes) for relation, attributes in nested.items()
            }

    def attributes_of(self, key: int) -> tuple[tuple[str, str], ...]:
        """``L(key)``: all attributes containing sample ``key``."""
        return self.entries.get(key, ())

    def relations_of(self, key: int) -> tuple[str, ...]:
        """Relations with at least one attribute containing sample ``key``."""
        return tuple(self.by_relation.get(key, {}))

    def attributes_in_relation(self, key: int, relation: str) -> tuple[str, ...]:
        """Attributes of ``relation`` containing sample ``key``."""
        return self.by_relation.get(key, {}).get(relation, ())

    def empty_keys(self) -> tuple[int, ...]:
        """Sample indexes that occur nowhere in the source.

        Any mapping covering such a column is invalid, so a non-empty
        result means the overall search must return no candidates (and
        the session should warn about an irrelevant sample).
        """
        return tuple(
            key for key in range(len(self.samples)) if not self.entries.get(key)
        )

    def total_occurrence_attributes(self) -> int:
        """Total attribute hits across all samples (reported in stats)."""
        return sum(len(pairs) for pairs in self.entries.values())


def build_location_map(
    db: Database,
    samples: Sequence[str],
    model: ErrorModel | None = None,
) -> LocationMap:
    """Run Algorithm 1: scan every full-text attribute for each sample."""
    model = model or default_error_model()
    entries: dict[int, tuple[tuple[str, str], ...]] = {}
    for key, sample in enumerate(samples):
        entries[key] = tuple(db.attributes_containing(sample, model))
    return LocationMap(samples=tuple(samples), entries=entries)
