"""Noisy-containment error models (the ``⊑`` operator of Section 4.1).

The paper "forgives inaccurate samples by allowing them to be noisily
contained" in the source, with the exact semantics delegated to "the
desired error model".  We make that operator a first-class, pluggable
object: an :class:`ErrorModel` decides whether a cell value contains a
sample, scores how well it matches (used by ranking), and tells the
inverted index which tokens it may use to prefilter candidate rows.

Models
------
:class:`ExactModel`
    Byte-for-byte equality after normalization.
:class:`CaseTokenModel` (the default)
    Every token of the sample must appear among the cell's tokens.
    Matches MySQL full-text ``MATCH ... AGAINST`` in boolean mode with
    all-required terms, which is what the paper's prototype used.
:class:`SubstringModel`
    The normalized sample must appear as a substring of the normalized
    cell.
:class:`EditDistanceModel`
    Tokenwise containment where each sample token may differ from some
    cell token by a bounded edit distance (typo tolerance).
:class:`NumericToleranceModel`
    An extension for numeric attributes (Section 7 future work): a
    numeric sample is contained if the cell parses to a number within a
    relative tolerance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.text.normalize import normalize_text
from repro.text.similarity import (
    levenshtein_distance,
    token_set_similarity,
)
from repro.text.tokenize import tokenize, tokenize_value


class ErrorModel(ABC):
    """Decides whether a source cell noisily contains a user sample."""

    #: Short identifier used in configuration and experiment reports.
    name: str = "abstract"

    @abstractmethod
    def contains(self, cell: object, sample: str) -> bool:
        """Return ``True`` iff ``cell ⊑ sample`` under this model."""

    def similarity(self, cell: object, sample: str) -> float:
        """Match quality in ``[0, 1]``; only meaningful when ``contains``.

        The default implementation scores by token/edit similarity of
        the stringified cell.
        """
        if cell is None:
            return 0.0
        return token_set_similarity(str(cell), sample)

    def index_tokens(self, sample: str) -> tuple[str, ...]:
        """Tokens whose inverted-index postings may prefilter candidates.

        A row can only satisfy ``contains`` if its cell holds *all* of
        these tokens.  Models that cannot guarantee any token (e.g. an
        edit-distance model) must return ``()``, forcing a scan.
        """
        return tokenize(sample)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class ExactModel(ErrorModel):
    """Equality after text normalization."""

    name = "exact"

    def contains(self, cell: object, sample: str) -> bool:
        if cell is None:
            return False
        return normalize_text(str(cell)) == normalize_text(sample)

    def similarity(self, cell: object, sample: str) -> float:
        return 1.0 if self.contains(cell, sample) else 0.0


class CaseTokenModel(ErrorModel):
    """All sample tokens must appear among the cell's tokens.

    This is the library default and mirrors the boolean-mode full-text
    search the paper's prototype ran against MySQL.
    """

    name = "token"

    def contains(self, cell: object, sample: str) -> bool:
        sample_tokens = tokenize(sample)
        if not sample_tokens:
            return False
        cell_tokens = set(tokenize_value(cell))
        return all(token in cell_tokens for token in sample_tokens)


class SubstringModel(ErrorModel):
    """The normalized sample is a substring of the normalized cell."""

    name = "substring"

    def contains(self, cell: object, sample: str) -> bool:
        sample_norm = normalize_text(sample)
        if not sample_norm:
            return False
        if cell is None:
            return False
        return sample_norm in normalize_text(str(cell))

    def index_tokens(self, sample: str) -> tuple[str, ...]:
        # A sample token may match as a substring of a *different* cell
        # token ("light" inside "Lightstorm"), so posting lists cannot
        # prefilter candidates — substring search must scan.
        return ()


@dataclass(frozen=True)
class EditDistanceModel(ErrorModel):
    """Typo-tolerant tokenwise containment.

    Every sample token must be within ``max_distance`` edits of some
    cell token.  Tokens shorter than ``min_fuzzy_length`` must match
    exactly (one-edit tolerance on two-letter words matches almost
    anything).
    """

    max_distance: int = 1
    min_fuzzy_length: int = 4
    name: str = "edit"

    def __post_init__(self) -> None:
        if self.max_distance < 0:
            raise ValueError("max_distance must be >= 0")

    def _token_matches(self, sample_token: str, cell_tokens: set[str]) -> bool:
        if sample_token in cell_tokens:
            return True
        if len(sample_token) < self.min_fuzzy_length:
            return False
        return any(
            levenshtein_distance(sample_token, cell_token, cap=self.max_distance)
            <= self.max_distance
            for cell_token in cell_tokens
        )

    def contains(self, cell: object, sample: str) -> bool:
        sample_tokens = tokenize(sample)
        if not sample_tokens:
            return False
        cell_tokens = set(tokenize_value(cell))
        if not cell_tokens:
            return False
        return all(self._token_matches(token, cell_tokens) for token in sample_tokens)

    def index_tokens(self, sample: str) -> tuple[str, ...]:
        # A fuzzy token may match a cell token that differs from it, so
        # postings cannot prefilter; only short (exact-match) tokens can.
        return tuple(
            token for token in tokenize(sample) if len(token) < self.min_fuzzy_length
        )


@dataclass(frozen=True)
class NumericToleranceModel(ErrorModel):
    """Containment for numeric samples within a relative tolerance.

    Falls back to token containment for non-numeric samples so that it
    can serve as a drop-in default on mixed-type columns.
    """

    relative_tolerance: float = 0.0
    name: str = "numeric"

    def __post_init__(self) -> None:
        if self.relative_tolerance < 0:
            raise ValueError("relative_tolerance must be >= 0")

    @staticmethod
    def _parse(value: object) -> float | None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                return None
        return None

    def contains(self, cell: object, sample: str) -> bool:
        sample_number = self._parse(sample)
        if sample_number is None:
            return CaseTokenModel().contains(cell, sample)
        cell_number = self._parse(cell)
        if cell_number is None:
            return False
        allowance = abs(sample_number) * self.relative_tolerance
        return abs(cell_number - sample_number) <= allowance

    def similarity(self, cell: object, sample: str) -> float:
        sample_number = self._parse(sample)
        cell_number = self._parse(cell)
        if sample_number is None or cell_number is None:
            return super().similarity(cell, sample)
        if sample_number == cell_number:
            return 1.0
        denominator = max(abs(sample_number), abs(cell_number), 1e-12)
        return max(0.0, 1.0 - abs(cell_number - sample_number) / denominator)

    def index_tokens(self, sample: str) -> tuple[str, ...]:
        if self._parse(sample) is not None and self.relative_tolerance > 0:
            return ()
        return tokenize(sample)


def default_error_model() -> ErrorModel:
    """The error model used throughout the paper's experiments."""
    return CaseTokenModel()
