"""Schema graph substrate (Definition 2 of the paper).

The schema graph has one vertex per relation and one undirected edge per
foreign-key constraint.  :class:`SchemaGraph` builds it from a
:class:`~repro.relational.schema.DatabaseSchema`;
:func:`enumerate_walks` performs the bounded breadth-first exploration
that Algorithm 3 ("Grow") runs to find pairwise join paths.
"""

from repro.graphs.schema_graph import SchemaEdge, SchemaGraph
from repro.graphs.walks import Walk, WalkStep, enumerate_walks

__all__ = ["SchemaEdge", "SchemaGraph", "Walk", "WalkStep", "enumerate_walks"]
