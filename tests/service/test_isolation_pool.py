"""Unit tests for the supervised subprocess pool.

These drive :class:`~repro.resilience.isolation.ProcessWorkerPool`
through its built-in ``diag.*`` tasks — no datasets, no service — so
each containment property (hard kill, OOM ceiling, recycling,
requeue-once, fault transport) is asserted in isolation.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import (
    DeadlineExceeded,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.resilience import FaultInjector, FaultSpec
from repro.resilience.isolation import (
    IsolationLimits,
    ProcessWorkerPool,
    WorkerBootstrap,
    snapshot_fault_specs,
)


def make_pool(**overrides) -> ProcessWorkerPool:
    settings = dict(procs=2, queue_size=8)
    settings.update(overrides)
    pool = ProcessWorkerPool(**settings)
    assert pool.wait_ready(60.0), "no worker completed its handshake"
    return pool


@pytest.fixture
def pool():
    pool = make_pool()
    yield pool
    pool.shutdown()


class TestHappyPath:
    def test_echo_round_trip(self, pool):
        result = pool.run("diag.echo", {"value": 42}, timeout_s=10.0)
        assert result["echo"] == 42
        assert result["pid"] != 0

    def test_jobs_run_in_a_different_process(self, pool):
        import os

        result = pool.run("diag.echo", {"value": 1}, timeout_s=10.0)
        assert result["pid"] != os.getpid()

    def test_unknown_task_is_an_error_not_a_crash(self, pool):
        with pytest.raises(RuntimeError, match="KeyError"):
            pool.run("diag.no-such-task", {}, timeout_s=10.0)
        # The worker survived the bad task name.
        assert pool.run("diag.echo", {"value": 2}, timeout_s=10.0)["echo"] == 2

    def test_remote_errors_carry_type_and_message(self, pool):
        with pytest.raises(RuntimeError, match="RuntimeError: kapow"):
            pool.run("diag.boom", {"message": "kapow"}, timeout_s=10.0)

    def test_snapshot_shape(self, pool):
        snap = pool.snapshot()
        assert snap["procs"] == 2
        # wait_ready only guarantees one handshake; the other worker
        # may legitimately still be starting.
        assert 1 <= snap["alive"] <= 2
        assert snap["kills"] == 0
        assert snap["oom_kills"] == 0
        assert {w["slot"] for w in snap["workers"]} == {0, 1}
        states = {w["state"] for w in snap["workers"]}
        assert states <= {"starting", "idle", "busy"}
        assert any(w["pid"] is not None for w in snap["workers"])


class TestDeadlines:
    def test_waiter_timeout_is_a_504_not_a_kill(self):
        # kill_after far beyond the waiter deadline: the waiter gives
        # up (DeadlineExceeded -> 504) while the worker keeps running.
        pool = make_pool(procs=1)
        try:
            with pytest.raises(DeadlineExceeded):
                pool.run(
                    "diag.sleep", {"seconds": 1.0},
                    timeout_s=0.2, kill_after_s=30.0,
                )
        finally:
            pool.shutdown()

    def test_blown_kill_deadline_sigkills_requeues_once_then_503(self):
        pool = make_pool(procs=2)
        try:
            started = time.monotonic()
            with pytest.raises(ServiceUnavailableError) as excinfo:
                pool.run(
                    "diag.sleep", {"seconds": 60.0},
                    timeout_s=15.0, kill_after_s=0.4,
                )
            elapsed = time.monotonic() - started
            assert excinfo.value.reason == "worker_killed"
            # Two attempts (the original and the one requeue), each
            # killed at ~0.4s, plus slack for polling and joins.
            assert elapsed < 6.0
            assert pool.kills == 2
            assert pool.requeued == 1
        finally:
            pool.shutdown()

    def test_worker_restarts_after_a_kill(self):
        pool = make_pool(procs=1)
        try:
            with pytest.raises(ServiceUnavailableError):
                pool.run(
                    "diag.sleep", {"seconds": 60.0},
                    timeout_s=15.0, kill_after_s=0.3,
                )
            # The slot runner respawns with backoff; the next job waits
            # in the queue until the replacement is up.
            result = pool.run("diag.echo", {"value": "back"}, timeout_s=20.0)
            assert result["echo"] == "back"
            assert pool.restarts >= 1
        finally:
            pool.shutdown()


@pytest.mark.slow
class TestMemoryCeilings:
    def test_rlimit_oom_is_contained_and_answered_503(self):
        pool = make_pool(
            procs=1,
            bootstrap=WorkerBootstrap(
                limits=IsolationLimits(address_space_mb=256)
            ),
        )
        try:
            small = pool.run("diag.alloc", {"mb": 4}, timeout_s=15.0)
            assert small["allocated_bytes"] == 4 * 1024 * 1024
            with pytest.raises(ServiceUnavailableError) as excinfo:
                pool.run("diag.alloc", {"mb": 4096}, timeout_s=20.0)
            assert excinfo.value.reason == "worker_killed"
            assert pool.oom_kills >= 1
            # The replacement worker is healthy.
            after = pool.run("diag.echo", {"value": "ok"}, timeout_s=20.0)
            assert after["echo"] == "ok"
        finally:
            pool.shutdown()

    def test_rss_growth_recycles_the_worker(self):
        pool = make_pool(
            procs=1,
            bootstrap=WorkerBootstrap(
                limits=IsolationLimits(max_growth_mb=64)
            ),
        )
        try:
            first = pool.run(
                "diag.alloc", {"mb": 128, "hold": True}, timeout_s=20.0
            )
            # The growth watchdog retires the bloated worker; the next
            # job lands on a fresh process.
            second = pool.run("diag.echo", {"value": "x"}, timeout_s=20.0)
            assert second["pid"] != first["pid"]
            assert pool.recycles >= 1
        finally:
            pool.shutdown()


class TestRecycling:
    def test_max_requests_retires_workers(self):
        pool = make_pool(
            procs=1,
            bootstrap=WorkerBootstrap(
                limits=IsolationLimits(max_requests=2)
            ),
        )
        try:
            pids = {
                pool.run("diag.echo", {"value": i}, timeout_s=20.0)["pid"]
                for i in range(5)
            }
            assert len(pids) >= 2
            assert pool.recycles >= 2
        finally:
            pool.shutdown()


class TestBackpressureAndLifecycle:
    def test_full_queue_answers_overloaded(self):
        pool = make_pool(procs=1, queue_size=1)
        try:
            # Occupy the only worker, then fill the only queue slot.
            blocker = pool.submit(
                "diag.sleep", {"seconds": 2.0},
                timeout_s=15.0, kill_after_s=30.0,
            )
            deadline = time.monotonic() + 5.0
            queued = None
            overloaded = None
            while time.monotonic() < deadline and overloaded is None:
                try:
                    if queued is None:
                        queued = pool.submit(
                            "diag.sleep", {"seconds": 0.1},
                            timeout_s=15.0, kill_after_s=30.0,
                        )
                    else:
                        pool.submit("diag.echo", {}, timeout_s=15.0)
                        time.sleep(0.01)
                except ServiceOverloadedError as error:
                    overloaded = error
            assert overloaded is not None
            assert overloaded.retry_after_s > 0
            blocker.wait()
        finally:
            pool.shutdown()

    def test_drain_finishes_outstanding_work(self):
        pool = make_pool(procs=1)
        job = pool.submit(
            "diag.sleep", {"seconds": 0.3}, timeout_s=15.0,
            kill_after_s=30.0,
        )
        assert pool.drain(timeout_s=10.0) is True
        assert job.done.is_set()
        assert job.error is None

    def test_submit_while_draining_is_refused(self):
        pool = make_pool(procs=1)
        pool.drain(timeout_s=5.0)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            pool.submit("diag.echo", {}, timeout_s=5.0)
        assert excinfo.value.reason == "drain"

    def test_shutdown_fails_queued_jobs_fast(self):
        pool = make_pool(procs=1)
        blocker = pool.submit(
            "diag.sleep", {"seconds": 1.0}, timeout_s=30.0,
            kill_after_s=60.0,
        )
        queued = pool.submit("diag.echo", {}, timeout_s=30.0)
        pool.shutdown()
        assert queued.done.is_set()
        assert isinstance(queued.error, ServiceUnavailableError)
        del blocker


class TestFaultTransport:
    def test_active_injector_snapshot_is_picklable_subset(self):
        def custom_error():
            return ValueError("not picklable by policy")

        specs = [
            FaultSpec("workers.job", mode="latency", latency_s=0.5),
            FaultSpec("index.search", mode="error", error=custom_error),
        ]
        with FaultInjector(specs):
            snapshot = snapshot_fault_specs()
        assert snapshot == [{
            "point": "workers.job",
            "mode": "latency",
            "probability": 1.0,
            "times": None,
            "latency_s": 0.5,
            "keep_fraction": 0.5,
        }]

    def test_no_injector_means_no_snapshot(self):
        assert snapshot_fault_specs() is None

    def test_error_fault_fires_inside_the_worker(self, pool):
        plan = [FaultSpec("workers.job", mode="error")]
        with FaultInjector(plan):
            with pytest.raises(RuntimeError, match="InjectedFault"):
                pool.run(
                    "diag.fault", {"point": "workers.job"}, timeout_s=10.0
                )
        # Injector gone: the same task passes through clean.
        result = pool.run(
            "diag.fault", {"point": "workers.job"}, timeout_s=10.0
        )
        assert result["unfaulted"] is True
