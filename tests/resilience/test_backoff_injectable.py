"""Satellite: the supervisor's respawn backoff is injectable.

``backoff_delay`` is a pure function of (failures, rng) and the pool
takes both the RNG and the sleep as constructor parameters, so a chaos
test can seed the jitter and record the exact respawn schedule instead
of sleeping through random delays.
"""

from __future__ import annotations

import random

from repro.resilience import backoff_delay
from repro.resilience.isolation import (
    _BACKOFF_BASE_S,
    _BACKOFF_CAP_S,
    ProcessWorkerPool,
)


def test_backoff_delay_is_deterministic_under_a_seed():
    a = [backoff_delay(n, random.Random(42)) for n in range(8)]
    b = [backoff_delay(n, random.Random(42)) for n in range(8)]
    assert a == b


def test_backoff_delay_differs_across_seeds():
    assert backoff_delay(3, random.Random(1)) != backoff_delay(
        3, random.Random(2)
    )


def test_backoff_delay_jitter_bounds():
    """Every delay lands in [0.5x, 1.5x] of the exponential schedule."""
    rng = random.Random(7)
    for failures in range(12):
        base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** failures))
        for _ in range(50):
            delay = backoff_delay(failures, rng)
            assert 0.5 * base <= delay <= 1.5 * base


def test_backoff_delay_caps_and_clamps_negative_failures():
    rng = random.Random(0)
    # Far past the cap: the exponential part saturates at the cap.
    assert backoff_delay(100, rng) <= 1.5 * _BACKOFF_CAP_S
    # Negative failure counts behave like zero, not a sub-base delay.
    floor = 0.5 * _BACKOFF_BASE_S
    for _ in range(20):
        assert backoff_delay(-3, rng) >= floor


def test_pool_routes_backoff_through_injected_rng_and_sleep():
    """The pool sleeps exactly ``backoff_delay`` of its injected RNG."""
    slept: list[float] = []
    pool = ProcessWorkerPool(
        procs=1,
        queue_size=1,
        backoff_rng=random.Random(42),
        backoff_sleep=slept.append,
    )
    try:
        for failures in (0, 1, 2, 5):
            pool._sleep_backoff(failures)
        expected_rng = random.Random(42)
        expected = [
            backoff_delay(failures, expected_rng)
            for failures in (0, 1, 2, 5)
        ]
        assert slept == expected
    finally:
        pool.shutdown()
