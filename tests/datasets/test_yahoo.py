"""Tests for the Yahoo-Movies-like generator."""

from repro.datasets.yahoo import (
    YAHOO_ATTRIBUTE_COUNT,
    YAHOO_RELATION_COUNT,
    build_yahoo_movies,
    yahoo_schema,
)


class TestSchemaShape:
    def test_relation_count_matches_paper(self):
        assert len(yahoo_schema()) == YAHOO_RELATION_COUNT == 43

    def test_attribute_count_matches_paper(self):
        assert yahoo_schema().attribute_count() == YAHOO_ATTRIBUTE_COUNT == 131

    def test_core_relations_present(self):
        schema = yahoo_schema()
        for name in ("movie", "person", "company", "location", "direct",
                     "write", "produce", "filmedin", "family"):
            assert name in schema

    def test_direct_write_parallel_structure(self):
        """The direct/write ambiguity of the running example exists."""
        schema = yahoo_schema()
        for junction in ("direct", "write"):
            fks = schema.relation(junction).foreign_keys
            targets = {fk.target for fk in fks}
            assert targets == {"movie", "person"}

    def test_sequel_has_two_fks_to_movie(self):
        fks = yahoo_schema().relation("sequel_of").foreign_keys
        assert [fk.target for fk in fks] == ["movie", "movie"]

    def test_key_columns_not_fulltext(self):
        schema = yahoo_schema()
        assert not schema.relation("movie").attribute("mid").fulltext
        assert schema.relation("movie").attribute("title").fulltext


class TestGeneratedInstance:
    def test_referential_integrity(self, yahoo_db):
        yahoo_db.validate_referential_integrity()

    def test_movie_count_matches_scale(self, yahoo_db):
        assert len(yahoo_db.table("movie")) == 80

    def test_every_movie_has_director_and_producer(self, yahoo_db):
        directed = {row[0] for row in yahoo_db.table("direct")}
        produced = {row[0] for row in yahoo_db.table("produce")}
        mids = {row[0] for row in yahoo_db.table("movie")}
        assert directed == mids
        assert produced == mids

    def test_some_directors_write(self, yahoo_db):
        """~25% of movies are written by their director — the source of
        the paper's direct-vs-write ambiguity."""
        directors = {(row[0], row[1]) for row in yahoo_db.table("direct")}
        writers = {(row[0], row[1]) for row in yahoo_db.table("write")}
        overlap = directors & writers
        assert 0 < len(overlap) < len(directors)

    def test_person_sharing_fanout(self, yahoo_db):
        """Zipf bias: some people work on many movies."""
        counts = {}
        for row in yahoo_db.table("direct"):
            counts[row[1]] = counts.get(row[1], 0) + 1
        assert max(counts.values()) >= 3

    def test_biography_never_contains_own_name(self, yahoo_db):
        person = yahoo_db.table("person")
        for row_id in person.row_ids():
            name = person.value(row_id, "name")
            biography = person.value(row_id, "biography")
            assert name not in biography

    def test_deterministic(self):
        a = build_yahoo_movies(n_movies=15, seed=5)
        b = build_yahoo_movies(n_movies=15, seed=5)
        for relation in a.schema.relation_names:
            assert list(a.table(relation)) == list(b.table(relation))

    def test_seed_changes_content(self):
        a = build_yahoo_movies(n_movies=15, seed=5)
        b = build_yahoo_movies(n_movies=15, seed=6)
        assert list(a.table("movie")) != list(b.table("movie"))

    def test_dvds_common_enough_for_task_set_two(self, yahoo_db):
        assert len(yahoo_db.table("dvd")) >= len(yahoo_db.table("movie")) * 0.4
