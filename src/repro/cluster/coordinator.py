"""The cluster coordinator: routing, failover, scatter-gather.

:class:`CoordinatorApp` fronts N ``mweaver shard`` backends with the
same transport contract as :class:`repro.service.app.ServiceApp`
(``handle(method, path, query, body) -> (status, payload, headers)``),
so the stock :class:`~repro.service.http.MappingServer` serves it and
every existing client — including the load bench — works unchanged.

Design:

* **Placement.** Sessions pin to shards via the consistent-hash ring's
  R-way replica set (:mod:`repro.cluster.ring`).  The first *routable*
  member is the session's primary; the rest are failover targets.
* **Durability.** The coordinator journals every accepted mutation
  (create / applied cell / delete) through the PR 4
  :class:`~repro.resilience.SessionJournal` *before* acknowledging.
  "Accepted" means the shard answered 200 with ``applied`` — the same
  only-what-was-kept rule the shards themselves journal under.
* **Failover.** A session call walks the replica set: transport
  failure feeds the shard's breaker and moves on; a shard that answers
  404 for a session the coordinator knows is re-seated by shipping the
  journaled grid to ``/admin/sessions/{id}/restore`` and retrying.
  One mechanism covers a killed primary, a cold secondary, a restarted
  shard, and a restarted coordinator (lazy re-seat after journal
  replay).  Only when every replica is exhausted does the client see a
  503 with ``reason="shard_down"``.
* **Replication.** The hot path touches one shard; a background
  :class:`Replicator` warms the other replicas with full-grid restores
  (idempotent, convergent), so failover replay is usually a no-op.
* **Scatter-gather.** ``GET /locate`` splits the LocateSample scan
  into one partition per shard (stable attribute hashing — see
  :func:`repro.service.registry.locate_partition`), fans them out in
  parallel with hedged requests, and degrades partially: unserved
  partitions surface as ``degraded`` with a
  ``Degradation(phase="cluster", reason="shard_down")`` record instead
  of failing the whole request.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import threading
import time
from typing import Any

from repro import obs
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionError,
    ShardUnavailableError,
    UnknownSessionError,
)
from repro.cluster.antientropy import AntiEntropyRepairer
from repro.cluster.client import HttpShardClient, ShardReply
from repro.cluster.config import ClusterConfig
from repro.cluster.health import HealthMonitor
from repro.cluster.rebalance import Rebalancer
from repro.cluster.ring import HashRing
from repro.obs import get_logger, get_metrics, get_tracer
from repro.obs.prometheus import render_exposition
from repro.resilience import Degradation, SessionJournal, replay_journal
from repro.service.retry_after import retry_after_header

_log = get_logger(__name__)

Response = tuple[int, "dict[str, Any] | str | None", "dict[str, str]"]

#: Reply headers worth forwarding to the client on passthrough.
_FORWARD_HEADERS = ("Content-Type", "Retry-After", "X-Request-Id")


class _BadRequest(Exception):
    """Internal: malformed payloads become 400s with this message."""


def _require(body: dict[str, Any] | None, key: str) -> Any:
    if not isinstance(body, dict) or key not in body:
        raise _BadRequest(f"missing required field {key!r}")
    return body[key]


def _as_int(value: Any, name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise _BadRequest(f"{name} must be an integer") from None


class ClusterSession:
    """The coordinator's record of one session: placement + grid."""

    __slots__ = (
        "session_id", "dataset", "columns", "on_irrelevant",
        "replicas", "primary", "cells", "failovers", "lock",
    )

    def __init__(
        self,
        session_id: str,
        dataset: str,
        columns: list[str],
        on_irrelevant: str,
        replicas: tuple[str, ...],
    ) -> None:
        self.session_id = session_id
        self.dataset = dataset
        self.columns = list(columns)
        self.on_irrelevant = on_irrelevant
        self.replicas = replicas
        self.primary = replicas[0]
        #: Accepted cells in acceptance order (last write per cell wins).
        self.cells: dict[tuple[int, int], str] = {}
        self.failovers = 0
        self.lock = threading.RLock()

    def restore_payload(self) -> dict[str, Any]:
        """The body shipped to a shard's ``/admin/.../restore``."""
        return {
            "dataset": self.dataset,
            "columns": list(self.columns),
            "on_irrelevant": self.on_irrelevant,
            "cells": [
                [row, column, value]
                for (row, column), value in self.cells.items()
            ],
        }


class Replicator:
    """Background warming of secondary replicas (full-grid restores).

    The hot path marks a session dirty after every accepted mutation;
    the sweep ships the whole grid to every non-primary replica.
    Restores are idempotent and convergent (replace semantics on the
    shard), so at-least-once delivery with coalescing is safe — and a
    replica that was down simply stays dirty until a later sweep.
    ``flush()`` runs one synchronous sweep for deterministic tests.
    """

    def __init__(self, coordinator: "CoordinatorApp", interval_s: float) -> None:
        self._coordinator = coordinator
        self.interval_s = interval_s
        self._dirty: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def mark(self, session_id: str) -> None:
        """Queue a session for the next replica ship."""
        with self._lock:
            self._dirty.add(session_id)

    def pending(self) -> int:
        """Sessions whose replicas still await a ship."""
        with self._lock:
            return len(self._dirty)

    def flush(self) -> None:
        """One synchronous sweep (tests; drain)."""
        self._sweep()

    def _sweep(self) -> None:
        with self._lock:
            batch = sorted(self._dirty)
            self._dirty.clear()
        for session_id in batch:
            session = self._coordinator._sessions.get(session_id)
            if session is None:
                continue
            with session.lock:
                payload = session.restore_payload()
                targets = [
                    shard for shard in session.replicas
                    if shard != session.primary
                ]
            for shard in targets:
                if not self._coordinator.health.is_up(shard):
                    self.mark(session_id)
                    continue
                try:
                    self._coordinator._ship_restore(
                        shard, session_id, payload
                    )
                except ShardUnavailableError:
                    self._coordinator.health.record_failure(shard)
                    self.mark(session_id)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._sweep()
            except Exception as error:  # noqa: BLE001 - keep sweeping
                _log.warning("replication sweep failed: %s", error)

    def start(self) -> "Replicator":
        """Start the background sweep thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="cluster-replicator", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sweep thread and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class CoordinatorApp:
    """One running coordinator instance (transport-independent)."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        clients: dict[str, Any] | None = None,
        client_factory: Any = None,
        start_background: bool = True,
    ) -> None:
        self.config = (config or ClusterConfig()).validate()
        self._client_factory = client_factory or (
            lambda address: HttpShardClient(
                address, timeout_s=self.config.request_timeout_s
            )
        )
        self.clients: dict[str, Any] = clients or {
            shard: self._client_factory(shard)
            for shard in self.config.shards
        }
        if set(self.clients) != set(self.config.shards):
            raise ValueError("clients must cover exactly config.shards")
        # Guards ring/clients/_decommissioning mutation (admin API);
        # plain reads ride on atomic attribute access.
        self._membership_lock = threading.RLock()
        self._decommissioning: set[str] = set()
        self.membership_changes = 0
        self.ring = HashRing(
            self.config.shards,
            replicas=self.config.replication,
            vnodes=self.config.vnodes,
        )
        self.health = HealthMonitor(
            self.clients,
            interval_s=self.config.heartbeat_interval_s,
            failure_threshold=self.config.failure_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            readmit_threshold=self.config.readmit_threshold,
        )
        self.replicator = Replicator(
            self, self.config.replicate_interval_s
        )
        self.rebalancer = Rebalancer(
            self,
            interval_s=self.config.rebalance_interval_s,
            batch=self.config.rebalance_batch,
        )
        self.repairer = AntiEntropyRepairer(
            self,
            interval_s=self.config.repair_interval_s,
            max_work=self.config.repair_max_work,
        )
        self.journal: SessionJournal | None = None
        if self.config.journal_dir:
            from pathlib import Path

            self.journal = SessionJournal(
                Path(self.config.journal_dir) / "cluster.journal"
            )
        self._sessions: dict[str, ClusterSession] = {}
        self._sessions_lock = threading.Lock()
        self._seq = itertools.count(1)
        self.recovered_sessions = 0
        if self.journal is not None:
            self._recover_sessions()
        self.failovers = 0
        self.hedges = 0
        self.degraded_locates = 0
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = False
        workers = max(4, 2 * len(self.config.shards))
        # Two pools so a scatter task can submit hedge attempts without
        # ever waiting on its own pool (classic nested-submit deadlock).
        self._scatter_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cluster-scatter"
        )
        self._hedge_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cluster-hedge"
        )
        if start_background:
            self.health.start()
            self.replicator.start()
            self.rebalancer.start()
            self.repairer.start()  # no-op when repair_interval_s == 0
        self.started_at = time.time()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def _recover_sessions(self) -> None:
        """Rebuild the session table from the coordinator journal.

        Shards are *not* contacted here: recovery only restores the
        coordinator's authoritative view.  The first call that finds a
        shard answering 404 re-seats the session lazily — so a
        coordinator restart costs nothing until a session is touched.
        """
        assert self.journal is not None
        recovered = replay_journal(self.journal.path)
        for session_id, journaled in recovered.items():
            if journaled.dataset not in self.config.datasets:
                _log.warning(
                    "journal recovery skipped session %s: dataset %r not "
                    "served", session_id, journaled.dataset,
                )
                continue
            session = ClusterSession(
                session_id,
                journaled.dataset,
                journaled.columns,
                journaled.on_irrelevant,
                self.ring.replica_set(session_id),
            )
            # Same normalization put_cell applies: stripped values,
            # empty cells absent (a journaled "" is a deletion).
            session.cells = {
                position: value.strip()
                for position, value in journaled.grid().items()
                if value.strip()
            }
            self._sessions[session_id] = session
            self.replicator.mark(session_id)
        self.recovered_sessions = len(self._sessions)
        self.journal.compact(
            {sid: recovered[sid] for sid in self._sessions}
        )
        if recovered:
            _log.info(
                "cluster journal recovery: restored %d of %d session(s)",
                len(self._sessions), len(recovered),
            )

    def begin_drain(self) -> None:
        """Stop admitting work; in-flight requests keep running."""
        with self._inflight_cond:
            if self._draining:
                return
            self._draining = True
        _log.info("coordinator drain started")

    def wait_idle(self, timeout_s: float) -> bool:
        """Block until no request is in flight (False on timeout)."""
        deadline = time.monotonic() + timeout_s
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(timeout=min(0.25, remaining))
        return True

    def drain(self, timeout_s: float | None = None) -> bool:
        """Full graceful shutdown: stop admitting, wait, close."""
        timeout = (
            timeout_s if timeout_s is not None
            else self.config.drain_timeout_s
        )
        self.begin_drain()
        clean = self.wait_idle(timeout)
        self.close()
        return clean

    def close(self) -> None:
        """Release threads, clients and the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.repairer.stop()
        self.rebalancer.stop()
        self.health.stop()
        self.replicator.stop()
        self._scatter_pool.shutdown(wait=False)
        self._hedge_pool.shutdown(wait=False)
        for client in self.clients.values():
            client.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "CoordinatorApp":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> Response:
        """Route one request; never raises — failures become statuses."""
        query = query or {}
        parts = tuple(part for part in path.split("/") if part)
        route = self._route_template(method, parts)
        tracer = get_tracer()
        with tracer.span(
            "cluster.request", method=method, route=route
        ) as span:
            started = time.perf_counter()
            with self._inflight_cond:
                self._inflight += 1
            try:
                try:
                    status, payload, headers = self._dispatch(
                        method, parts, query, body
                    )
                except _BadRequest as error:
                    status, payload, headers = 400, {"error": str(error)}, {}
                except UnknownSessionError as error:
                    status, payload, headers = 404, {"error": str(error)}, {}
                except ServiceOverloadedError as error:
                    status = 429
                    payload = {"error": str(error),
                               "retry_after_s": error.retry_after_s}
                    headers = {
                        "Retry-After": retry_after_header(
                            error.retry_after_s
                        )
                    }
                except ServiceUnavailableError as error:
                    status = 503
                    payload = {"error": str(error),
                               "reason": error.reason,
                               "retry_after_s": error.retry_after_s}
                    headers = {
                        "Retry-After": retry_after_header(
                            error.retry_after_s
                        )
                    }
                except CircuitOpenError as error:
                    status = 503
                    payload = {"error": str(error),
                               "retry_after_s": error.retry_after_s}
                    headers = {
                        "Retry-After": retry_after_header(
                            error.retry_after_s
                        )
                    }
                except DeadlineExceeded as error:
                    status, payload, headers = 504, {"error": str(error)}, {}
                except SessionError as error:
                    status, payload, headers = 400, {"error": str(error)}, {}
                except ReproError as error:
                    status, payload, headers = 400, {"error": str(error)}, {}
                except Exception as error:  # noqa: BLE001 - 500 boundary
                    _log.exception("unhandled coordinator error")
                    status = 500
                    payload = {"error": f"internal error: {error}"}
                    headers = {}
            finally:
                with self._inflight_cond:
                    self._inflight -= 1
                    self._inflight_cond.notify_all()
            span.set("status", status)
            elapsed = time.perf_counter() - started
        metrics = get_metrics()
        metrics.counter(
            "repro.cluster.requests", route=route, status=status
        ).inc()
        metrics.histogram(
            "repro.cluster.request.seconds"
        ).observe(elapsed)
        return status, payload, headers

    @staticmethod
    def _route_template(method: str, parts: tuple[str, ...]) -> str:
        if parts and parts[0] == "sessions" and len(parts) >= 2:
            tail = "/".join(parts[2:])
            suffix = f"/{tail}" if tail else ""
            return f"{method} /sessions/{{id}}{suffix}"
        if len(parts) == 3 and parts[:2] == ("admin", "shards"):
            return f"{method} /admin/shards/{{address}}"
        return f"{method} /{'/'.join(parts)}"

    def _dispatch(
        self,
        method: str,
        parts: tuple[str, ...],
        query: dict[str, str],
        body: dict[str, Any] | None,
    ) -> Response:
        if parts == ("healthz",) and method == "GET":
            return self.healthz(query)
        if parts == ("metrics",) and method == "GET":
            return self.metrics(query)
        if self._draining:
            raise ServiceUnavailableError(
                "coordinator is draining",
                retry_after_s=self.config.retry_after_s,
                reason="drain",
            )
        if parts == ("sessions",):
            if method == "POST":
                return self.create_session(body)
            if method == "GET":
                with self._sessions_lock:
                    return 200, {"sessions": sorted(self._sessions)}, {}
        if len(parts) == 2 and parts[0] == "sessions":
            session_id = parts[1]
            if method == "GET":
                return self.proxy_session(
                    session_id, "GET", f"/sessions/{session_id}", query
                )
            if method == "DELETE":
                return self.delete_session(session_id)
        if len(parts) == 3 and parts[0] == "sessions":
            session_id, action = parts[1], parts[2]
            if action == "cells" and method == "POST":
                return self.put_cell(session_id, body)
            if method == "GET" and action in (
                "candidates", "explain", "suggest"
            ):
                return self.proxy_session(
                    session_id, "GET",
                    f"/sessions/{session_id}/{action}", query,
                )
        if parts == ("locate",) and method == "GET":
            return self.locate(query)
        if parts == ("admin", "shards"):
            if method == "GET":
                return self.admin_list_shards()
            if method == "POST":
                return self.admin_add_shard(body)
        if (
            len(parts) == 3
            and parts[:2] == ("admin", "shards")
            and method == "DELETE"
        ):
            return self.admin_remove_shard(parts[2])
        if parts == ("admin", "repair") and method == "POST":
            return self.admin_repair()
        return 404, {"error": f"no route for {method} /{'/'.join(parts)}"}, {}

    # -- shard plumbing ------------------------------------------------

    def _shard_call(
        self,
        shard: str,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> ShardReply:
        client = self.clients.get(shard)
        if client is None:
            # Removed by a concurrent decommission: same contract as a
            # dead shard — the caller fails over.
            raise ShardUnavailableError(shard, "shard left the cluster")
        return client.call(method, path, query, body)

    def _ship_restore(
        self, shard: str, session_id: str, payload: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Re-seat one session on one shard (raises on any failure).

        Returns the shard's restore reply body (anti-entropy reads the
        post-restore ``digest`` from it for thrash detection).
        """
        reply = self._shard_call(
            shard, "POST", f"/admin/sessions/{session_id}/restore",
            None, payload,
        )
        if reply.status != 200:
            raise ShardUnavailableError(
                shard, f"restore answered {reply.status}"
            )
        try:
            return reply.json()
        except Exception:  # noqa: BLE001 - body is advisory
            return None

    def _call_session(
        self,
        session: ClusterSession,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> ShardReply:
        """One session-pinned call with replica failover.

        Walks the replica set starting at the current primary.  A
        transport failure feeds the breaker and moves on; a 404 from a
        shard that *should* hold the session means it lost it (restart,
        eviction, never-warmed secondary) — re-seat from the
        coordinator's journaled grid and retry once.  Success promotes
        whichever shard answered to primary.  Shard refusals (429 /
        503 / 504) pass through: the shard is alive, just busy.
        """
        candidates = [session.primary] + [
            shard for shard in session.replicas
            if shard != session.primary
        ]
        routable = [s for s in candidates if self.health.is_up(s)]
        for shard in routable:
            try:
                reply = self._shard_call(shard, method, path, query, body)
                if reply.status == 404:
                    # The shard lost the session: re-seat and retry.
                    self._ship_restore(
                        shard, session.session_id,
                        session.restore_payload(),
                    )
                    reply = self._shard_call(
                        shard, method, path, query, body
                    )
                    if reply.status == 404:
                        continue
            except ShardUnavailableError:
                self.health.record_failure(shard)
                continue
            self.health.record_success(shard)
            if shard != session.primary:
                _log.warning(
                    "session %s failed over %s -> %s",
                    session.session_id, session.primary, shard,
                )
                session.primary = shard
                session.failovers += 1
                self.failovers += 1
                get_metrics().counter("repro.cluster.failovers").inc()
                # The old primary (and any stale secondary) needs the
                # grid re-shipped once it comes back.
                self.replicator.mark(session.session_id)
            return reply
        raise ServiceUnavailableError(
            f"no replica of session {session.session_id} is reachable "
            f"(replicas: {', '.join(session.replicas)})",
            retry_after_s=self.config.retry_after_s,
            reason="shard_down",
        )

    def _passthrough(self, reply: ShardReply) -> Response:
        """Forward a shard reply verbatim (no decode/re-encode)."""
        headers = {
            key: reply.headers[key]
            for key in _FORWARD_HEADERS
            if key in reply.headers
        }
        if not reply.body:
            return reply.status, None, headers
        headers.setdefault("Content-Type", "application/json")
        return reply.status, reply.text(), headers

    def _session(self, session_id: str) -> ClusterSession:
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        return session

    # -- endpoints -----------------------------------------------------

    def create_session(self, body: dict[str, Any] | None) -> Response:
        """``POST /sessions`` — place and create a replicated session."""
        body = body or {}
        dataset = str(body.get("dataset", self.config.datasets[0]))
        if dataset not in self.config.datasets:
            raise _BadRequest(
                f"dataset {dataset!r} is not served (loaded: "
                f"{', '.join(self.config.datasets)})"
            )
        columns = body.get("columns", list(self.config.default_columns))
        if (
            not isinstance(columns, (list, tuple))
            or not columns
            or not all(isinstance(c, str) and c.strip() for c in columns)
        ):
            raise _BadRequest("columns must be a non-empty list of names")
        on_irrelevant = str(body.get("on_irrelevant", "ignore"))
        with self._sessions_lock:
            if len(self._sessions) >= self.config.max_sessions:
                raise ServiceOverloadedError(
                    f"session table full ({self.config.max_sessions})",
                    retry_after_s=self.config.retry_after_s,
                )
            session_id = (
                f"x{next(self._seq):04d}-{os.urandom(3).hex()}"
            )
            session = ClusterSession(
                session_id, dataset, [str(c).strip() for c in columns],
                on_irrelevant, self.ring.replica_set(session_id),
            )
            self._sessions[session_id] = session
        try:
            with session.lock:
                # An empty-grid restore on the primary acts as
                # create-with-id; failover inside _call_session covers
                # a down home shard.
                reply = self._call_session(
                    session, "POST",
                    f"/admin/sessions/{session_id}/restore",
                    None, session.restore_payload(),
                )
        except Exception:
            with self._sessions_lock:
                self._sessions.pop(session_id, None)
            raise
        if reply.status != 200:
            with self._sessions_lock:
                self._sessions.pop(session_id, None)
            return self._passthrough(reply)
        if self.journal is not None:
            self.journal.record_create(
                session_id, dataset, session.columns,
                on_irrelevant=on_irrelevant,
            )
        self.replicator.mark(session_id)
        state = dict(reply.json())
        state.pop("restored", None)
        state.pop("replaced", None)
        state["replicas"] = list(session.replicas)
        state["primary"] = session.primary
        return 201, state, {}

    def put_cell(
        self, session_id: str, body: dict[str, Any] | None
    ) -> Response:
        """``POST /sessions/{id}/cells`` — proxy one input, journal it."""
        session = self._session(session_id)
        row = _as_int(_require(body, "row"), "row")
        value = str(_require(body, "value"))
        assert body is not None
        column = body.get("column")
        column_name = body.get("column_name")
        if column is None and column_name is None:
            raise _BadRequest("provide either column or column_name")
        if column is not None:
            col_index = _as_int(column, "column")
        else:
            try:
                col_index = session.columns.index(str(column_name))
            except ValueError:
                raise _BadRequest(
                    f"unknown column {column_name!r}"
                ) from None
        with session.lock:
            reply = self._call_session(
                session, "POST", f"/sessions/{session_id}/cells",
                None, body,
            )
            if reply.status != 200:
                return self._passthrough(reply)
            state = reply.json()
            if state.get("applied"):
                # Accepted: durable in the coordinator journal before
                # the client sees the 200 — this is the state failover
                # replays, so `kill -9` of the shard cannot lose it.
                # Mirror the spreadsheet's normalization (values
                # stripped, empty cells absent) so the coordinator's
                # grid hashes identically to the shard's under
                # anti-entropy digest comparison.
                stripped = value.strip()
                if stripped:
                    session.cells[(row, col_index)] = stripped
                else:
                    session.cells.pop((row, col_index), None)
                if self.journal is not None:
                    self.journal.record_cell(
                        session_id, row, col_index, value
                    )
                self.replicator.mark(session_id)
        return 200, state, {}

    def proxy_session(
        self,
        session_id: str,
        method: str,
        path: str,
        query: dict[str, str],
    ) -> Response:
        """Read-only session calls: route with failover, pass through."""
        session = self._session(session_id)
        with session.lock:
            reply = self._call_session(session, method, path, query, None)
        return self._passthrough(reply)

    def delete_session(self, session_id: str) -> Response:
        """``DELETE /sessions/{id}`` — drop everywhere, best-effort."""
        with self._sessions_lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(session_id)
        if self.journal is not None:
            self.journal.record_delete(session_id)
        for shard in session.replicas:
            try:
                self._shard_call(
                    shard, "DELETE", f"/sessions/{session_id}"
                )
            except ShardUnavailableError:
                # The shard is down; its TTL sweeper will collect the
                # orphan if it comes back.
                self.health.record_failure(shard)
        return 204, None, {}

    # -- live membership (admin API) -----------------------------------

    def admin_list_shards(self) -> Response:
        """``GET /admin/shards`` — membership + rebalance/repair status."""
        with self._membership_lock:
            ring_shards = set(self.ring.shards)
            decommissioning = set(self._decommissioning)
        health = {
            entry["shard"]: entry for entry in self.health.snapshot()
        }
        members = [
            {
                "address": shard,
                "on_ring": shard in ring_shards,
                "decommissioning": shard in decommissioning,
                "up": bool(health.get(shard, {}).get("up")),
            }
            for shard in sorted(ring_shards | decommissioning)
        ]
        return 200, {
            "shards": members,
            "ring": self.ring.summary(),
            "membership_changes": self.membership_changes,
            "rebalance": self.rebalancer.snapshot(),
            "repair": self.repairer.snapshot(),
        }, {}

    def admin_add_shard(self, body: dict[str, Any] | None) -> Response:
        """``POST /admin/shards`` — join a shard to the ring, live.

        The new shard starts receiving heartbeats immediately; the
        rebalancer then reseats (at its bounded rate) every session
        whose replica set the join moved.  Re-adding a shard that is
        mid-decommission cancels the decommission.
        """
        address = str(_require(body, "address")).strip()
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise _BadRequest(f"address {address!r} is not host:port")
        with self._membership_lock:
            if address in self.ring.shards:
                return 409, {
                    "error": f"shard {address} is already a member"
                }, {}
            rejoining = address in self._decommissioning
            self.ring = self.ring.add(address)
            self._decommissioning.discard(address)
            if address not in self.clients:
                client = self._client_factory(address)
                self.clients[address] = client
                self.health.add_shard(address, client)
            self.membership_changes += 1
        queued = self.rebalancer.mark_all()
        get_metrics().counter(
            "repro.cluster.membership.changes", op="join"
        ).inc()
        _log.info(
            "shard %s %s the ring (%d session(s) queued for rebalance)",
            address, "rejoined" if rejoining else "joined", queued,
        )
        return 201, {
            "address": address,
            "rejoined": rejoining,
            "ring": self.ring.summary(),
            "rebalance_pending": self.rebalancer.pending(),
        }, {}

    def admin_remove_shard(self, address: str) -> Response:
        """``DELETE /admin/shards/{address}`` — decommission, live.

        The shard leaves the *ring* at once (no new placements) but
        keeps serving the sessions it holds while the rebalancer
        drains them off; only when nothing references it any more is
        it dropped from the health monitor and its client closed
        (:meth:`_sweep_decommissions`).  Answers 202 — removal is
        asynchronous by design.
        """
        with self._membership_lock:
            if address not in self.ring.shards:
                if address in self._decommissioning:
                    return 202, {
                        "address": address,
                        "decommissioning": True,
                        "rebalance_pending": self.rebalancer.pending(),
                    }, {}
                return 404, {
                    "error": f"shard {address} is not a member"
                }, {}
            if len(self.ring.shards) == 1:
                return 400, {
                    "error": "cannot decommission the last shard"
                }, {}
            self.ring = self.ring.remove(address)
            self._decommissioning.add(address)
            self.membership_changes += 1
        queued = self.rebalancer.mark_all()
        get_metrics().counter(
            "repro.cluster.membership.changes", op="decommission"
        ).inc()
        _log.info(
            "shard %s decommissioning (%d session(s) queued for drain)",
            address, queued,
        )
        return 202, {
            "address": address,
            "decommissioning": True,
            "rebalance_pending": self.rebalancer.pending(),
        }, {}

    def _sweep_decommissions(self) -> None:
        """Finish any decommission no live session references."""
        with self._membership_lock:
            pending = set(self._decommissioning)
        if not pending:
            return
        with self._sessions_lock:
            referenced: set[str] = set()
            for session in self._sessions.values():
                referenced.update(session.replicas)
                referenced.add(session.primary)
        for shard in sorted(pending - referenced):
            self._finish_decommission(shard)

    def _finish_decommission(self, shard: str) -> None:
        with self._membership_lock:
            if shard not in self._decommissioning:
                return
            self._decommissioning.discard(shard)
            self.health.remove_shard(shard)
            client = self.clients.pop(shard, None)
        if client is not None:
            client.close()
        get_metrics().counter(
            "repro.cluster.membership.changes", op="removed"
        ).inc()
        _log.info("shard %s decommissioned (drained and removed)", shard)

    def admin_repair(self) -> Response:
        """``POST /admin/repair`` — one synchronous anti-entropy round."""
        report = self.repairer.run_round()
        return 200, {
            "round": report.to_dict(),
            "rounds": self.repairer.rounds,
            "total_reseats": self.repairer.total_reseats,
        }, {}

    # -- scatter-gather LocateSample -----------------------------------

    def locate(self, query: dict[str, str]) -> Response:
        """``GET /locate`` — scatter one sample across all shards.

        One partition per shard; hedged per-partition requests; union
        of whatever answered.  Missing partitions degrade the response
        (``Degradation(phase="cluster", reason="shard_down")``) rather
        than failing it — unless *nothing* answered.
        """
        dataset = str(query.get("dataset", self.config.datasets[0]))
        if dataset not in self.config.datasets:
            raise _BadRequest(
                f"dataset {dataset!r} is not served (loaded: "
                f"{', '.join(self.config.datasets)})"
            )
        if "sample" not in query:
            raise _BadRequest("missing required query parameter 'sample'")
        sample = str(query["sample"])
        # Partition over the *live* ring so joins widen the scan and
        # decommissions stop targeting the departing shard.
        parts = len(self.ring.shards)
        started = time.perf_counter()
        futures = [
            self._scatter_pool.submit(
                self._locate_partition, dataset, sample, parts, part
            )
            for part in range(parts)
        ]
        entries: set[tuple[str, str]] = set()
        unserved = 0
        for future in futures:
            result = future.result()
            if result is None:
                unserved += 1
            else:
                entries.update(
                    (str(rel), str(attr)) for rel, attr in result
                )
        if unserved == parts:
            raise ServiceUnavailableError(
                "no shard served any LocateSample partition",
                retry_after_s=self.config.retry_after_s,
                reason="shard_down",
            )
        body: dict[str, Any] = {
            "dataset": dataset,
            "sample": sample,
            "entries": [list(entry) for entry in sorted(entries)],
            "parts": parts,
            "served_parts": parts - unserved,
            "degraded": unserved > 0,
        }
        if unserved:
            self.degraded_locates += 1
            get_metrics().counter("repro.cluster.locate.degraded").inc()
            body["degradation"] = Degradation(
                phase="cluster",
                reason="shard_down",
                elapsed_s=time.perf_counter() - started,
                skipped={"partitions": unserved},
            ).to_dict()
        return 200, body, {}

    def _locate_partition(
        self, dataset: str, sample: str, parts: int, part: int
    ) -> list | None:
        """Fetch one partition, hedging to the next replica when slow."""
        candidates = [
            shard
            for shard in self.ring.replica_set(f"locate#{part}")
            if self.health.is_up(shard)
        ]
        if not candidates:
            return None

        def attempt(shard: str) -> list | None:
            try:
                reply = self._shard_call(
                    shard, "GET", "/locate",
                    {
                        "dataset": dataset, "sample": sample,
                        "parts": str(parts), "part": str(part),
                    },
                )
            except ShardUnavailableError:
                self.health.record_failure(shard)
                return None
            if reply.status != 200:
                return None
            self.health.record_success(shard)
            return reply.json()["entries"]

        if self.config.hedge_delay_s <= 0 or len(candidates) == 1:
            # Hedging disabled (or nowhere to hedge): sequential
            # failover down the candidate list.
            for shard in candidates:
                result = attempt(shard)
                if result is not None:
                    return result
            return None
        first = self._hedge_pool.submit(attempt, candidates[0])
        try:
            result = first.result(timeout=self.config.hedge_delay_s)
            if result is not None:
                return result
        except concurrent.futures.TimeoutError:
            pass
        # The preferred shard is slow or freshly failed: race a second
        # attempt against it and take whichever answers first.
        self.hedges += 1
        get_metrics().counter("repro.cluster.locate.hedges").inc()
        second = self._hedge_pool.submit(attempt, candidates[1])
        for future in concurrent.futures.as_completed((first, second)):
            result = future.result()
            if result is not None:
                return result
        return None

    # -- health + metrics ----------------------------------------------

    def healthz(self, query: dict[str, str] | None = None) -> Response:
        """``GET /healthz`` — cluster view; ``?ready=1`` — readiness."""
        query = query or {}
        shards = self.health.snapshot()
        up = sum(1 for shard in shards if shard["up"])
        with self._sessions_lock:
            placement = {
                session_id: {
                    "primary": session.primary,
                    "replicas": list(session.replicas),
                    "cells": len(session.cells),
                    "failovers": session.failovers,
                }
                for session_id, session in sorted(self._sessions.items())
            }
        body: dict[str, Any] = {
            "status": "ok" if up == len(shards) else "degraded",
            "role": "coordinator",
            "uptime_s": round(time.time() - self.started_at, 3),
            "shards": shards,
            "shards_up": up,
            "ring": self.ring.summary(),
            "sessions": {
                "count": len(placement),
                "placement": placement,
            },
            "failovers": self.failovers,
            "hedges": self.hedges,
            "degraded_locates": self.degraded_locates,
            "replication_pending": self.replicator.pending(),
            "membership": {
                "changes": self.membership_changes,
                "decommissioning": sorted(self._decommissioning),
            },
            "rebalance": self.rebalancer.snapshot(),
            "repair": self.repairer.snapshot(),
            "journal": (
                {
                    "path": str(self.journal.path),
                    "appended": self.journal.appended,
                    "recovered_sessions": self.recovered_sessions,
                }
                if self.journal is not None
                else None
            ),
            "draining": self._draining,
        }
        if query.get("ready", "") in ("1", "true", "yes"):
            blockers = []
            if self._draining:
                blockers.append("draining")
            if up == 0:
                blockers.append("no_healthy_shard")
            body["ready"] = not blockers
            if blockers:
                body["ready_blockers"] = blockers
                retry = retry_after_header(self.config.retry_after_s)
                return 503, body, {"Retry-After": retry}
        return 200, body, {}

    def _refresh_gauges(self) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.gauge("repro.cluster.uptime.seconds").set(
            round(time.time() - self.started_at, 3)
        )
        with self._sessions_lock:
            live = len(self._sessions)
        metrics.gauge("repro.cluster.sessions.live").set(live)
        monitored = self.health.shards()
        metrics.gauge("repro.cluster.shards.total").set(len(monitored))
        up = 0
        for shard in monitored:
            shard_up = self.health.is_up(shard)
            up += 1 if shard_up else 0
            metrics.gauge(
                "repro.cluster.shard.up", shard=shard
            ).set(1 if shard_up else 0)
        metrics.gauge("repro.cluster.shards.up").set(up)
        metrics.gauge("repro.cluster.replication.pending").set(
            self.replicator.pending()
        )
        metrics.gauge("repro.cluster.rebalance.pending").set(
            self.rebalancer.pending()
        )
        metrics.gauge("repro.cluster.membership.decommissioning").set(
            len(self._decommissioning)
        )

    def metrics(self, query: dict[str, str] | None = None) -> Response:
        """``GET /metrics`` — cluster gauges + the obs registry."""
        query = query or {}
        self._refresh_gauges()
        if query.get("format") == "prometheus":
            text = render_exposition(obs.get_metrics())
            return 200, text, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }
        with self._sessions_lock:
            live = len(self._sessions)
        return 200, {
            "cluster": {
                "uptime_s": round(time.time() - self.started_at, 3),
                "sessions": live,
                "shards_up": len(self.health.up_shards()),
                "failovers": self.failovers,
                "hedges": self.hedges,
                "degraded_locates": self.degraded_locates,
            },
            "metrics": obs.get_metrics().snapshot(),
        }, {}
