"""Tests for configuration objects."""

import pytest

from repro.config import NaiveConfig, RankingWeights, TPWConfig


class TestRankingWeights:
    def test_defaults(self):
        weights = RankingWeights()
        assert weights.match_weight == 1.0
        assert weights.join_weight == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(match_weight=-1.0)
        with pytest.raises(ValueError):
            RankingWeights(join_weight=-0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RankingWeights().match_weight = 2.0  # type: ignore[misc]


class TestTPWConfig:
    def test_paper_defaults(self):
        config = TPWConfig()
        assert config.pmnj == 2
        assert config.allow_backtrack is False
        assert config.exhaustive_weave is False
        assert config.max_tuple_paths_per_mapping == 0
        assert config.max_woven_paths_per_level == 0

    def test_negative_pmnj_rejected(self):
        with pytest.raises(ValueError):
            TPWConfig(pmnj=-1)

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            TPWConfig(max_tuple_paths_per_mapping=-1)
        with pytest.raises(ValueError):
            TPWConfig(max_woven_paths_per_level=-5)

    def test_custom_ranking(self):
        config = TPWConfig(ranking=RankingWeights(join_weight=0.2))
        assert config.ranking.join_weight == 0.2


class TestNaiveConfig:
    def test_defaults(self):
        config = NaiveConfig()
        assert config.pmnj == 2
        assert config.max_candidates == 200_000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NaiveConfig(pmnj=-1)
        with pytest.raises(ValueError):
            NaiveConfig(max_candidates=-1)
