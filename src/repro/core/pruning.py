"""Sample pruning (Section 5).

After the initial candidate set is built from the first spreadsheet
row, every additional sample narrows it:

* **Pruning by attribute** — a new sample in column ``i`` keeps only
  candidates whose column-``i`` projection is one of the source
  attributes containing the sample.
* **Pruning by mapping structure** — when a later row holds two or more
  samples, each candidate is probed with an approximate-search query
  over *all* that row's samples; candidates with an empty result are
  discarded (Example 7: entering *Big Fish* / *Tim Burton* eliminates
  the join via ``write`` because Big Fish's writer is not Tim Burton).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.mapping_path import MappingPath
from repro.obs import get_metrics
from repro.relational.database import Database
from repro.relational.executor import tree_exists
from repro.text.errors import ErrorModel, default_error_model


def _record_decisions(reason: str, evaluated: int, kept: int) -> None:
    """Count prune outcomes by reason (audit trail for ranking behavior)."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    metrics.counter("repro.prune.evaluated", reason=reason).inc(evaluated)
    metrics.counter("repro.prune.dropped", reason=reason).inc(evaluated - kept)


def prune_by_attribute(
    db: Database,
    candidates: Sequence[MappingPath],
    key: int,
    sample: str,
    model: ErrorModel | None = None,
) -> list[MappingPath]:
    """Keep candidates whose column-``key`` attribute contains ``sample``.

    Candidates that do not project column ``key`` at all are kept (they
    cannot be contradicted by it); complete mappings always project
    every column, so in the session this case never triggers.
    """
    model = model or default_error_model()
    containing = set(db.attributes_containing(sample, model))
    kept = []
    for mapping in candidates:
        if key not in mapping.projections:
            kept.append(mapping)
        elif mapping.attribute_of(key) in containing:
            kept.append(mapping)
    _record_decisions("attribute", len(candidates), len(kept))
    return kept


def prune_by_structure(
    db: Database,
    candidates: Sequence[MappingPath],
    row_samples: Mapping[int, str],
    model: ErrorModel | None = None,
) -> list[MappingPath]:
    """Keep candidates that can co-produce all of ``row_samples``.

    ``row_samples`` maps column indexes to the samples currently on one
    spreadsheet row; each candidate is kept iff a single source tuple
    assignment satisfies every one of them simultaneously (an existence
    query with early exit — this is why pruning is an order of
    magnitude cheaper than searching in Table 2).
    """
    model = model or default_error_model()
    if not row_samples:
        return list(candidates)
    kept = []
    for mapping in candidates:
        predicates = mapping.predicates_for(row_samples, model)
        if tree_exists(db, mapping.tree, predicates):
            kept.append(mapping)
    _record_decisions("structure", len(candidates), len(kept))
    return kept
