"""Completeness (Theorem 2): every valid mapping in the search family
is discovered.

Two layers of evidence:

* hand-derived expectations on the running example — we enumerate, by
  reading Figure 5, exactly which mappings must exist for a sample
  tuple, and assert the engine returns precisely that set;
* agreement with the enumerate-then-validate baseline across sample
  tuples (the baseline validates with database queries, a code path
  disjoint from tuple weaving) — see also tests/core/test_naive.py.
"""

import pytest

from repro.config import TPWConfig
from repro.core.naive import NaiveEngine
from repro.core.tpw import TPWEngine


def candidate_shapes(result):
    """Summarise candidates as (projection attrs, FK multiset)."""
    shapes = set()
    for mapping in result.mappings:
        attrs = tuple(
            mapping.attribute_of(key) for key in sorted(mapping.projections)
        )
        fks = tuple(sorted(edge.fk_name for edge in mapping.tree.edges))
        shapes.add((attrs, fks))
    return shapes


class TestHandDerivedExpectations:
    def test_avatar_cameron(self, running_db):
        """Avatar ⊑ movie.title only; Cameron ⊑ person.name only; Cameron
        both directed and wrote Avatar ⇒ exactly the two variants."""
        result = TPWEngine(running_db).search(("Avatar", "James Cameron"))
        assert candidate_shapes(result) == {
            (
                (("movie", "title"), ("person", "name")),
                ("direct_mid", "direct_pid"),
            ),
            (
                (("movie", "title"), ("person", "name")),
                ("write_mid", "write_pid"),
            ),
        }

    def test_yates_only_directs(self, running_db):
        result = TPWEngine(running_db).search(("Harry Potter", "David Yates"))
        assert candidate_shapes(result) == {
            (
                (("movie", "title"), ("person", "name")),
                ("direct_mid", "direct_pid"),
            ),
        }

    def test_ed_wood_tim_burton(self, running_db):
        """'Ed Wood' occurs in movie.title, movie.logline and person.name;
        Tim Burton directed AND wrote the movie Ed Wood.  person.name
        for column 0 is unreachable within PMNJ=2 (person-to-person
        needs four joins), so exactly title/logline × direct/write."""
        result = TPWEngine(running_db).search(("Ed Wood", "Tim Burton"))
        expected = set()
        for attribute in ("title", "logline"):
            for fk_pair in (("direct_mid", "direct_pid"), ("write_mid", "write_pid")):
                expected.add(
                    (
                        (("movie", attribute), ("person", "name")),
                        fk_pair,
                    )
                )
        assert candidate_shapes(result) == expected

    def test_full_running_sample_tuple(self, running_db):
        """The Figure 8/9 outcome: exactly direct & write variants of the
        four-column mapping."""
        result = TPWEngine(running_db).search(
            ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
        )
        shapes = candidate_shapes(result)
        assert len(shapes) == 2
        for attrs, fks in shapes:
            assert attrs == (
                ("movie", "title"),
                ("person", "name"),
                ("company", "name"),
                ("location", "loc"),
            )
            assert "produce_mid" in fks and "filmedin_mid" in fks

    def test_pmnj_widening_adds_long_join_variants(self, running_db):
        """('James Cameron', 'James Cameron'): at PMNJ=2 only the
        zero-join single-relation mapping exists; at PMNJ=4 the
        person-direct-movie-write-person round trips (Cameron wrote the
        movies he directed) become reachable and supported."""
        narrow = TPWEngine(running_db, TPWConfig(pmnj=2)).search(
            ("James Cameron", "James Cameron")
        )
        assert {m.n_joins for m in narrow.mappings} == {0}
        wide = TPWEngine(running_db, TPWConfig(pmnj=4)).search(
            ("James Cameron", "James Cameron")
        )
        joins = {m.n_joins for m in wide.mappings}
        assert 0 in joins and 4 in joins
        narrow_signatures = {m.signature() for m in narrow.mappings}
        wide_signatures = {m.signature() for m in wide.mappings}
        assert narrow_signatures <= wide_signatures


class TestBaselineAgreement:
    TUPLES = [
        ("Titanic", "James Cameron"),
        ("Ed Wood", "Tim Burton"),
        ("Big Fish", "J. K. Rowling"),  # writer of a different movie: empty
    ]

    @pytest.mark.parametrize("samples", TUPLES, ids=["-".join(t) for t in TUPLES])
    def test_exhaustive_equals_baseline(self, running_db, samples):
        tpw = TPWEngine(running_db, TPWConfig(exhaustive_weave=True))
        naive = NaiveEngine(running_db)
        assert {m.signature() for m in tpw.search(samples).mappings} == {
            m.signature() for m in naive.search(samples).valid_mappings
        }

    def test_generated_dataset_agreement(self, yahoo_db):
        """Same check on a generated source with 43 relations."""
        title = yahoo_db.table("movie").value(5, "title")
        date = yahoo_db.table("movie").value(5, "release_date")
        samples = (title, date)
        tpw = TPWEngine(yahoo_db, TPWConfig(exhaustive_weave=True))
        naive = NaiveEngine(yahoo_db)
        assert {m.signature() for m in tpw.search(samples).mappings} == {
            m.signature() for m in naive.search(samples).valid_mappings
        }
