"""Tests for the full simulated user study (Figure 10 shape checks)."""

import pytest

from repro.datasets.workload import user_study_task_imdb, user_study_task_yahoo
from repro.study.study import StudyResult, run_user_study, satisfaction_scores


@pytest.fixture(scope="module")
def study(yahoo_db, imdb_db) -> StudyResult:
    return run_user_study(
        {
            "yahoo-movies": (yahoo_db, user_study_task_yahoo()),
            "imdb": (imdb_db, user_study_task_imdb()),
        }
    )


class TestStudyStructure:
    def test_cell_count(self, study):
        # 3 tools × 10 users × 2 datasets
        assert len(study.usages) == 60

    def test_tools_and_users(self, study):
        assert study.tools() == ("MWeaver", "Eirene", "InfoSphere")
        assert len(study.users()) == 10

    def test_datasets(self, study):
        assert set(study.datasets()) == {"yahoo-movies", "imdb"}

    def test_lookup(self, study):
        usage = study.lookup("MWeaver", "N3", "imdb")
        assert usage.tool == "MWeaver" and usage.user == "N3"

    def test_lookup_missing(self, study):
        with pytest.raises(KeyError):
            study.lookup("MWeaver", "N99", "imdb")

    def test_metric_panel_shape(self, study):
        panel = study.metric_panel("imdb", "seconds")
        assert set(panel) == {"MWeaver", "Eirene", "InfoSphere"}
        for series in panel.values():
            assert len(series) == 10

    def test_reproducible(self, yahoo_db, imdb_db, study):
        again = run_user_study(
            {
                "yahoo-movies": (yahoo_db, user_study_task_yahoo()),
                "imdb": (imdb_db, user_study_task_imdb()),
            }
        )
        # Motor metrics are exactly reproducible; seconds embed measured
        # engine latency, so compare with a small tolerance.
        for one, two in zip(again.usages, study.usages):
            assert (one.tool, one.user, one.dataset) == (
                two.tool, two.user, two.dataset
            )
            assert (one.keystrokes, one.clicks) == (two.keystrokes, two.clicks)
            assert one.seconds == pytest.approx(two.seconds, abs=1.0)


class TestPaperShape:
    """Figure 10 headline ratios, with generous tolerances."""

    def test_time_ratio_vs_infosphere(self, study):
        ratio = study.time_ratio("MWeaver", "InfoSphere")
        assert 3.5 <= ratio <= 7.0  # paper: ≈5

    def test_time_ratio_vs_eirene(self, study):
        ratio = study.time_ratio("MWeaver", "Eirene")
        assert 2.5 <= ratio <= 6.0  # paper: ≈4

    def test_keystroke_ratio_vs_eirene(self, study):
        ratio = study.mean_metric("Eirene", "keystrokes") / study.mean_metric(
            "MWeaver", "keystrokes"
        )
        assert 1.5 <= ratio <= 4.0  # paper: ≈2

    def test_click_ratio(self, study):
        for other in ("Eirene", "InfoSphere"):
            ratio = study.mean_metric(other, "clicks") / study.mean_metric(
                "MWeaver", "clicks"
            )
            assert ratio >= 3.0  # paper: ≈5

    def test_every_user_faster_with_mweaver(self, study):
        for dataset in study.datasets():
            for user in study.users():
                mweaver = study.lookup("MWeaver", user, dataset).seconds
                for other in ("Eirene", "InfoSphere"):
                    assert mweaver < study.lookup(other, user, dataset).seconds

    def test_satisfaction_ordering(self, study):
        scores = satisfaction_scores(study)
        assert scores["MWeaver"] > scores["Eirene"] > scores["InfoSphere"]

    def test_satisfaction_near_paper_values(self, study):
        scores = satisfaction_scores(study)
        assert scores["MWeaver"] == pytest.approx(4.7, abs=0.35)
        assert scores["Eirene"] == pytest.approx(3.45, abs=0.45)
        assert scores["InfoSphere"] == pytest.approx(2.7, abs=0.45)

    def test_scores_within_scale(self, study):
        for score in satisfaction_scores(study).values():
            assert 1.0 <= score <= 5.0

    def test_no_substantial_expert_novice_gap_on_mweaver(self, study):
        """§6.2: "no substantial performance difference between database
        experts and end-users" — MWeaver requires no schema expertise,
        so the expert mean must sit within the novice range."""
        from statistics import mean

        experts, novices = [], []
        for dataset in study.datasets():
            for user in study.users():
                seconds = study.lookup("MWeaver", user, dataset).seconds
                (experts if user.startswith("D") else novices).append(seconds)
        assert min(novices) * 0.6 <= mean(experts) <= max(novices) * 1.4
