"""Satellite: journal compaction racing concurrent TTL eviction.

Compaction rewrites the journal through a temp file + ``os.replace``
while the ``SessionManager``'s eviction callback keeps appending
``delete`` records from other threads.  These tests pin the safety
properties of that window:

* appends and compaction serialize — no torn or interleaved lines,
* records appended after compaction land in the *new* file (not the
  replaced temp) and apply over the compacted prefix on replay,
* a racing eviction yields one of the two coherent serializations,
  never a corrupted journal,
* a torn tail written after compaction does not damage the compacted
  state underneath it.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.resilience import SessionJournal, replay_journal
from repro.service.sessions import SessionManager


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "sessions.journal"


def _lines(path):
    return path.read_text(encoding="utf-8").splitlines()


class _FakeSession:
    """Stand-in mapping session; the manager never looks inside."""


class TestCompactionVsConcurrentAppends:
    def test_concurrent_appends_never_tear_the_journal(self, journal_path):
        """Appends from many threads racing repeated compactions leave
        every line individually parsable — the write lock serializes
        the ``os.replace`` swap against in-flight appends."""
        journal = SessionJournal(journal_path)
        journal.record_create("keep", "running", ["Name"])
        live = replay_journal(journal_path)
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                n = 0
                while not stop.is_set():
                    journal.record_cell("keep", worker, n % 7, f"v{n}")
                    journal.record_delete(f"ghost-{worker}-{n}")
                    n += 1
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                journal.compact(live)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        journal.close()

        assert not errors
        for line in _lines(journal_path):
            json.loads(line)  # raises on any torn/interleaved write
        replayed = replay_journal(journal_path)
        assert "keep" in replayed

    def test_appends_after_compact_land_in_the_new_file(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.record_cell("s1", 0, 0, "Avatar")
        live = replay_journal(journal_path)
        journal.compact(live)
        # The handle was swapped to the rewritten file: this append must
        # be durable, not lost in the replaced temp file.
        journal.record_cell("s1", 1, 0, "Big Fish")
        journal.record_delete("s1")
        journal.close()
        assert replay_journal(journal_path) == {}
        ops = [json.loads(line)["op"] for line in _lines(journal_path)]
        assert ops == ["create", "cell", "cell", "delete"]


class TestCompactionVsTtlEviction:
    def test_eviction_after_compact_wins_on_replay(self, journal_path):
        """on_evict firing after compaction appends a delete the
        compacted prefix cannot resurrect."""
        journal = SessionJournal(journal_path)
        clock = [0.0]
        manager = SessionManager(
            max_sessions=8,
            ttl_s=10.0,
            clock=lambda: clock[0],
            on_evict=journal.record_delete,
        )
        manager.create("running", _FakeSession, session_id="s1")
        journal.record_create("s1", "running", ["Name"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.compact(replay_journal(journal_path))

        clock[0] = 100.0  # TTL expired -> sweep fires record_delete
        assert manager.evict_idle() == ("s1",)
        journal.close()
        assert replay_journal(journal_path) == {}

    def test_racing_eviction_yields_a_coherent_serialization(
        self, journal_path
    ):
        """A TTL sweep racing ``compact`` produces one of exactly two
        outcomes — session live (evict serialized first, snapshot wins)
        or session deleted (evict serialized after) — and the journal
        parses cleanly either way."""
        for attempt in range(20):
            path = journal_path.with_name(f"race-{attempt}.journal")
            journal = SessionJournal(path)
            clock = [0.0]
            manager = SessionManager(
                max_sessions=8,
                ttl_s=10.0,
                clock=lambda: clock[0],
                on_evict=journal.record_delete,
            )
            manager.create("running", _FakeSession, session_id="s1")
            journal.record_create("s1", "running", ["Name"])
            journal.record_cell("s1", 0, 0, "Avatar")
            live = replay_journal(path)
            clock[0] = 100.0

            barrier = threading.Barrier(2)

            def evict() -> None:
                barrier.wait()
                manager.evict_idle()

            def compact() -> None:
                barrier.wait()
                journal.compact(live)

            threads = [
                threading.Thread(target=evict),
                threading.Thread(target=compact),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            journal.close()

            for line in _lines(path):
                json.loads(line)
            replayed = replay_journal(path)
            if "s1" in replayed:
                # Evict won the lock first: its delete was folded away by
                # the snapshot rewrite.  The manager still evicted it —
                # recovery would re-admit and re-expire it, which is the
                # documented coherent outcome.
                assert replayed["s1"].grid() == {(0, 0): "Avatar"}
            else:
                assert replayed == {}


class TestTornTailAfterCompaction:
    def test_torn_tail_after_compact_keeps_compacted_state(
        self, journal_path
    ):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name", "Director"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.record_cell("s1", 0, 1, "James Cameron")
        journal.compact(replay_journal(journal_path))
        journal.close()
        # A crash mid-append after compaction tears the last line.
        with journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "delete", "session_id": "s1"')  # torn
        live = replay_journal(journal_path)
        assert set(live) == {"s1"}
        assert live["s1"].grid() == {
            (0, 0): "Avatar",
            (0, 1): "James Cameron",
        }

    def test_torn_tail_then_valid_appends_both_resolve(self, journal_path):
        """Replay skips the torn line but still applies a later valid
        record appended after it (crash-recover-append sequence)."""
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.compact(replay_journal(journal_path))
        journal.close()
        with journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "cell", "session_id": "s1", "ro\n')  # torn
        reopened = SessionJournal(journal_path)
        reopened.record_cell("s1", 2, 0, "Titanic")
        reopened.close()
        live = replay_journal(journal_path)
        assert live["s1"].grid() == {(2, 0): "Titanic"}
