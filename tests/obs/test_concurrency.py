"""Thread-safety of the obs layer under the service's worker pool.

Two properties the concurrent service leans on:

* :meth:`Tracer.adopt` lets a worker thread parent its spans under a
  span opened on the request thread, without corrupting either
  thread's stack.
* Metrics instruments take a per-instrument lock, so eight threads
  hammering one histogram or counter lose nothing (``+=`` alone is a
  read-modify-write that drops updates under thread switches).
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.resilience import Budget


class TestAdopt:
    def test_adopt_parents_spans_from_another_thread(self):
        tracer = Tracer()
        with tracer.span("request") as request:
            def work():
                with tracer.adopt(request):
                    with tracer.span("job"):
                        pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert [child.name for child in request.children] == ["job"]
        assert [span.name for span in tracer.finished] == ["request"]

    def test_adopt_does_not_finish_or_refile_the_span(self):
        tracer = Tracer()
        span = tracer.span("request")
        with span:
            with tracer.adopt(span):
                pass
            assert span.status == "open"   # adopt never closes it
            assert tracer.finished == ()   # ... nor files it as a root
        assert span.status == "ok"
        assert tracer.finished == (span,)

    def test_adopt_none_is_a_noop(self):
        tracer = Tracer()
        with tracer.adopt(None) as adopted:
            assert adopted is None
            assert tracer.current() is None

    def test_null_tracer_adopt_is_a_noop(self):
        tracer = NullTracer()
        with tracer.adopt(object()) as adopted:
            assert adopted is None

    def test_adopting_thread_keeps_its_own_stack_clean(self):
        tracer = Tracer()
        outcome = {}

        def work(request):
            with tracer.adopt(request):
                outcome["inside"] = tracer.current()
            outcome["after"] = tracer.current()

        with tracer.span("request") as request:
            thread = threading.Thread(target=work, args=(request,))
            thread.start()
            thread.join()
        assert outcome["inside"] is request
        assert outcome["after"] is None


class TestMetricsContention:
    THREADS = 8
    ROUNDS = 5_000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)

        def loop():
            barrier.wait()
            for _ in range(self.ROUNDS):
                fn()

        threads = [threading.Thread(target=loop) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_histogram_loses_no_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.contention", buckets=(1.0, 2.0))
        self._hammer(lambda: histogram.observe(0.5))
        expected = self.THREADS * self.ROUNDS
        assert histogram.count == expected
        assert histogram.counts == [expected, 0, 0]
        assert histogram.sum == expected * 0.5

    def test_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.hits")
        self._hammer(counter.inc)
        assert counter.value == self.THREADS * self.ROUNDS

    def test_gauge_inc_dec_balance(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.depth")

        def bounce():
            gauge.inc()
            gauge.dec()

        self._hammer(bounce)
        assert gauge.value == 0

    def test_get_or_create_races_produce_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def grab():
            instrument = registry.counter("test.single")
            with lock:
                seen.append(instrument)

        self._hammer(grab)
        assert all(instrument is seen[0] for instrument in seen)


class TestBudgetCancellationVisibility:
    """Cross-thread cancellation of a search budget is promptly seen.

    The service's request thread cancels the worker's budget on
    timeout; the worker polls ``exhausted()`` at iteration boundaries.
    The flag is a single attribute write read without locking — this
    pins down that a hot polling loop actually observes it.
    """

    def test_worker_loop_observes_cancel_from_another_thread(self):
        budget = Budget()
        observed = threading.Event()

        def poll():
            while not budget.exhausted():
                pass
            observed.set()

        worker = threading.Thread(target=poll)
        worker.start()
        budget.cancel()
        worker.join(timeout=5.0)
        assert observed.is_set()
        assert budget.reason == "cancelled"

    def test_many_threads_see_one_sticky_verdict(self):
        budget = Budget(max_work=1)
        budget.charge(2)
        barrier = threading.Barrier(8)
        verdicts = []
        lock = threading.Lock()

        def check():
            barrier.wait()
            value = budget.exhausted()
            with lock:
                verdicts.append(value)

        threads = [threading.Thread(target=check) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert verdicts == [True] * 8
