"""Bounded walk enumeration over the schema graph.

Algorithm 3 of the paper ("Grow") runs a breadth-first search from a
sample-containing relation, depth-limited by ``PMNJ``, and reconstructs
a relation path whenever it reaches another sample-containing relation.
Crucially the BFS never marks vertices visited — it enumerates *walks*,
so the same relation may appear several times on a path (Definition 3
allows this).  :func:`enumerate_walks` is that enumeration, factored out
of the mapping layer so it can be tested and ablated in isolation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.graphs.schema_graph import SchemaEdge, SchemaGraph


@dataclass(frozen=True)
class WalkStep:
    """One hop of a walk: traverse ``edge`` and arrive at ``to_relation``.

    ``from_is_source`` records whether the hop leaves the foreign key's
    source (referencing) side — needed to orient instance navigation
    when the edge is a self loop.
    """

    edge: SchemaEdge
    to_relation: str
    from_is_source: bool


@dataclass(frozen=True)
class Walk:
    """A walk on the schema graph: a start relation plus ordered steps."""

    start: str
    steps: tuple[WalkStep, ...] = ()

    @property
    def end(self) -> str:
        """The relation the walk currently stands on."""
        if self.steps:
            return self.steps[-1].to_relation
        return self.start

    @property
    def n_joins(self) -> int:
        """Number of edges traversed."""
        return len(self.steps)

    def relations(self) -> tuple[str, ...]:
        """Every relation on the walk, in visit order (with repeats)."""
        return (self.start, *(step.to_relation for step in self.steps))

    def extended(self, step: WalkStep) -> "Walk":
        """A new walk with ``step`` appended."""
        return Walk(self.start, self.steps + (step,))

    def describe(self) -> str:
        """``movie -direct- person`` style rendering."""
        parts = [self.start]
        for step in self.steps:
            parts.append(f"-{step.edge.name}-")
            parts.append(step.to_relation)
        return " ".join(parts)


def enumerate_walks(
    graph: SchemaGraph,
    start: str,
    max_joins: int,
    *,
    allow_backtrack: bool = False,
) -> Iterator[Walk]:
    """Yield every walk from ``start`` with at most ``max_joins`` edges.

    The zero-length walk (just ``start``) is yielded first, then walks
    in breadth-first (shortest-first) order — the same order Algorithm 3
    discovers relation paths in, which keeps generated mapping paths
    deterministic.

    With ``allow_backtrack=False`` (the default) a walk never traverses
    the edge it just arrived by, *unless* that edge is a self loop (a
    self loop legitimately supports repeated traversal, e.g. a
    ``movie_link`` chain).  This removes U-turn walks, which only
    re-derive the tuples they came from.
    """
    queue: deque[Walk] = deque([Walk(start)])
    while queue:
        walk = queue.popleft()
        yield walk
        if walk.n_joins >= max_joins:
            continue
        last_edge = walk.steps[-1].edge if walk.steps else None
        for edge in graph.incident_edges(walk.end):
            if (
                not allow_backtrack
                and last_edge is not None
                and edge is last_edge
                and not edge.is_self_loop()
            ):
                continue
            if edge.is_self_loop():
                # A self loop can be traversed in either direction.
                for from_is_source in (True, False):
                    step = WalkStep(edge, walk.end, from_is_source)
                    queue.append(walk.extended(step))
            else:
                to_relation = edge.other(walk.end)
                from_is_source = edge.fk.source == walk.end
                step = WalkStep(edge, to_relation, from_is_source)
                queue.append(walk.extended(step))
