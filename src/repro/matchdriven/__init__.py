"""A working match-driven baseline (the workflow the paper replaces).

Section 2 classifies the state of the art: schema-based, instance-based
and hybrid matchers feed a Clio-style two-phase pipeline — propose
attribute correspondences, then derive one executable mapping.  The
user study's InfoSphere condition is that pipeline; this package
implements a compact version of it so the paper's criticisms can be
demonstrated mechanically rather than asserted:

* correspondences are ranked guesses: the top name-similarity match for
  a target column is frequently wrong (the user must review,
  §1: "painstakingly double-check an automatically-generated set of
  matches");
* even with perfect correspondences, several join paths may connect the
  matched relations and the pipeline picks one — "which may not be the
  desired one" (§1, citing [7]).

:mod:`repro.matchdriven.matcher` proposes correspondences (name +
optional instance evidence); :mod:`repro.matchdriven.pipeline` connects
the matched relations with a shortest-join-tree heuristic and emits a
single :class:`~repro.core.mapping_path.MappingPath`.
"""

from repro.matchdriven.matcher import Correspondence, propose_correspondences
from repro.matchdriven.pipeline import MatchDrivenResult, match_driven_mapping

__all__ = [
    "Correspondence",
    "propose_correspondences",
    "MatchDrivenResult",
    "match_driven_mapping",
]
