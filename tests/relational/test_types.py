"""Unit tests for value coercion."""

import pytest

from repro.exceptions import IntegrityError
from repro.relational.types import DataType, coerce_value


class TestDataType:
    def test_text_is_textual(self):
        assert DataType.TEXT.is_textual

    def test_date_is_textual(self):
        assert DataType.DATE.is_textual

    def test_integer_not_textual(self):
        assert not DataType.INTEGER.is_textual

    def test_float_not_textual(self):
        assert not DataType.FLOAT.is_textual


class TestCoerceInteger:
    def test_int_passthrough(self):
        assert coerce_value(42, DataType.INTEGER, "t.c") == 42

    def test_none_passthrough(self):
        assert coerce_value(None, DataType.INTEGER, "t.c") is None

    def test_integral_float(self):
        assert coerce_value(42.0, DataType.INTEGER, "t.c") == 42

    def test_numeric_string(self):
        assert coerce_value(" 42 ", DataType.INTEGER, "t.c") == 42

    def test_fractional_float_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value(42.5, DataType.INTEGER, "t.c")

    def test_bad_string_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value("abc", DataType.INTEGER, "t.c")

    def test_bool_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value(True, DataType.INTEGER, "t.c")

    def test_error_message_names_column(self):
        with pytest.raises(IntegrityError, match="movie.mid"):
            coerce_value("x", DataType.INTEGER, "movie.mid")


class TestCoerceFloat:
    def test_int_becomes_float(self):
        value = coerce_value(3, DataType.FLOAT, "t.c")
        assert value == 3.0
        assert isinstance(value, float)

    def test_string_parsed(self):
        assert coerce_value("3.25", DataType.FLOAT, "t.c") == 3.25

    def test_bad_string_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value("pi", DataType.FLOAT, "t.c")

    def test_bool_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value(False, DataType.FLOAT, "t.c")


class TestCoerceText:
    def test_string_passthrough(self):
        assert coerce_value("Avatar", DataType.TEXT, "t.c") == "Avatar"

    def test_number_stringified(self):
        assert coerce_value(1999, DataType.TEXT, "t.c") == "1999"

    def test_date_accepts_string(self):
        assert coerce_value("2009-12-18", DataType.DATE, "t.c") == "2009-12-18"

    def test_list_rejected(self):
        with pytest.raises(IntegrityError):
            coerce_value(["a"], DataType.TEXT, "t.c")
