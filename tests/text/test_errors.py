"""Unit tests for the noisy-containment error models (the ``⊑`` of §4.1)."""

import pytest

from repro.text.errors import (
    CaseTokenModel,
    EditDistanceModel,
    ExactModel,
    NumericToleranceModel,
    SubstringModel,
    default_error_model,
)


class TestExactModel:
    model = ExactModel()

    def test_exact_match(self):
        assert self.model.contains("Avatar", "Avatar")

    def test_normalized_match(self):
        assert self.model.contains("AVATAR", "avatar")

    def test_superset_fails(self):
        assert not self.model.contains("Avatar Returns", "Avatar")

    def test_none_cell(self):
        assert not self.model.contains(None, "Avatar")

    def test_similarity_is_binary(self):
        assert self.model.similarity("Avatar", "Avatar") == 1.0
        assert self.model.similarity("Avatar Returns", "Avatar") == 0.0


class TestCaseTokenModel:
    model = CaseTokenModel()

    def test_all_tokens_present(self):
        assert self.model.contains("James Francis Cameron", "James Cameron")

    def test_case_insensitive(self):
        assert self.model.contains("JAMES CAMERON", "james cameron")

    def test_order_irrelevant(self):
        assert self.model.contains("Cameron, James", "James Cameron")

    def test_missing_token_fails(self):
        assert not self.model.contains("James Smith", "James Cameron")

    def test_empty_sample_never_contained(self):
        assert not self.model.contains("anything", "   ")

    def test_none_cell(self):
        assert not self.model.contains(None, "x")

    def test_numeric_cell(self):
        assert self.model.contains(1999, "1999")

    def test_is_default(self):
        assert isinstance(default_error_model(), CaseTokenModel)

    def test_index_tokens_are_sample_tokens(self):
        assert self.model.index_tokens("Ed Wood") == ("ed", "wood")


class TestSubstringModel:
    model = SubstringModel()

    def test_substring(self):
        assert self.model.contains("The Hidden Empire Returns", "hidden empire")

    def test_word_prefix_matches(self):
        # substring semantics are character-based, not token-based
        assert self.model.contains("Lightstorm", "light")

    def test_absent(self):
        assert not self.model.contains("Avatar", "Empire")

    def test_empty_sample(self):
        assert not self.model.contains("Avatar", "")


class TestEditDistanceModel:
    model = EditDistanceModel(max_distance=1)

    def test_exact_token(self):
        assert self.model.contains("James Cameron", "Cameron")

    def test_one_typo(self):
        assert self.model.contains("James Cameron", "Cameron")

    def test_two_typos_fail(self):
        assert not self.model.contains("James Cameron", "Camirun")

    def test_short_tokens_must_be_exact(self):
        assert not self.model.contains("Ed Wood", "Et")

    def test_short_token_exact_ok(self):
        assert self.model.contains("Ed Wood", "Ed")

    def test_empty_cell(self):
        assert not self.model.contains("", "Cameron")

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            EditDistanceModel(max_distance=-1)

    def test_index_tokens_only_short_ones(self):
        # Fuzzy (long) tokens cannot prefilter via postings.
        assert self.model.index_tokens("Ed Cameron") == ("ed",)


class TestNumericToleranceModel:
    def test_exact_number(self):
        model = NumericToleranceModel()
        assert model.contains(120, "120")

    def test_within_tolerance(self):
        model = NumericToleranceModel(relative_tolerance=0.05)
        assert model.contains(104.0, "100")

    def test_outside_tolerance(self):
        model = NumericToleranceModel(relative_tolerance=0.05)
        assert not model.contains(110.0, "100")

    def test_numeric_string_cell(self):
        model = NumericToleranceModel(relative_tolerance=0.1)
        assert model.contains("95", "100")

    def test_non_numeric_sample_falls_back_to_tokens(self):
        model = NumericToleranceModel()
        assert model.contains("James Cameron", "Cameron")

    def test_non_numeric_cell_with_numeric_sample(self):
        model = NumericToleranceModel()
        assert not model.contains("Avatar", "100")

    def test_similarity_decreases_with_distance(self):
        model = NumericToleranceModel(relative_tolerance=1.0)
        near = model.similarity(101, "100")
        far = model.similarity(150, "100")
        assert near > far

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            NumericToleranceModel(relative_tolerance=-0.1)

    def test_index_tokens_empty_when_fuzzy_numeric(self):
        model = NumericToleranceModel(relative_tolerance=0.1)
        assert model.index_tokens("100") == ()
