"""Schema objects: attributes, relations, foreign keys, whole databases.

The schema layer is the ground truth for everything above it: the schema
graph (Definition 2) is derived from :class:`ForeignKey` declarations,
and Algorithm 1's attribute scan walks :meth:`DatabaseSchema.text_attributes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.types import DataType

_IDENTIFIER_BAD_CHARS = set(" \t\n.,;\"'`()")


def _check_identifier(name: str, kind: str) -> None:
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    if any(ch in _IDENTIFIER_BAD_CHARS for ch in name):
        raise SchemaError(f"{kind} name {name!r} contains illegal characters")


@dataclass(frozen=True)
class Attribute:
    """A column of a relation.

    Parameters
    ----------
    name:
        Column name, unique within its relation.
    data_type:
        Storage type; see :class:`~repro.relational.types.DataType`.
    fulltext:
        Whether the column participates in sample search.  Defaults to
        true for textual types and false otherwise.  Key columns are
        typically declared ``fulltext=False`` so that a user typing
        ``42`` does not match every surrogate key in the database.
    """

    name: str
    data_type: DataType = DataType.TEXT
    fulltext: bool | None = None

    def __post_init__(self) -> None:
        _check_identifier(self.name, "attribute")
        if self.fulltext is None:
            object.__setattr__(self, "fulltext", self.data_type.is_textual)

    def describe(self) -> str:
        """One-line human-readable description."""
        flag = " [fulltext]" if self.fulltext else ""
        return f"{self.name}: {self.data_type.value}{flag}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from ``source`` columns to ``target`` key.

    Each constraint becomes one edge of the schema graph; two relations
    linked by two distinct constraints get two parallel edges, which is
    essential for self-join-style sources (e.g. a ``movie_link`` table
    with two references into ``movie``).
    """

    name: str
    source: str
    source_columns: tuple[str, ...]
    target: str
    target_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        _check_identifier(self.name, "foreign key")
        if not self.source_columns:
            raise SchemaError(f"foreign key {self.name!r} has no source columns")
        if len(self.source_columns) != len(self.target_columns):
            raise SchemaError(
                f"foreign key {self.name!r}: column count mismatch "
                f"({len(self.source_columns)} vs {len(self.target_columns)})"
            )

    def endpoint_for(self, relation: str) -> str:
        """The relation at the other end of this constraint.

        Raises :class:`~repro.exceptions.SchemaError` if ``relation`` is
        not an endpoint.  For self-referencing constraints both ends are
        the same relation and that name is returned.
        """
        if relation == self.source:
            return self.target
        if relation == self.target:
            return self.source
        raise SchemaError(f"relation {relation!r} is not an endpoint of {self.name!r}")

    def describe(self) -> str:
        """Human-readable ``source(cols) -> target(cols)`` rendering."""
        src = ", ".join(self.source_columns)
        dst = ", ".join(self.target_columns)
        return f"{self.source}({src}) -> {self.target}({dst})"


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: ordered attributes, key, outgoing FKs."""

    name: str
    attributes: tuple[Attribute, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _positions: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        _check_identifier(self.name, "relation")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} has no attributes")
        positions: dict[str, int] = {}
        for index, attribute in enumerate(self.attributes):
            if attribute.name in positions:
                raise SchemaError(
                    f"relation {self.name!r}: duplicate attribute {attribute.name!r}"
                )
            positions[attribute.name] = index
        object.__setattr__(self, "_positions", positions)
        for key_column in self.primary_key:
            if key_column not in positions:
                raise UnknownAttributeError(self.name, key_column)
        for foreign_key in self.foreign_keys:
            if foreign_key.source != self.name:
                raise SchemaError(
                    f"foreign key {foreign_key.name!r} declared on {self.name!r} "
                    f"but sourced from {foreign_key.source!r}"
                )
            for column in foreign_key.source_columns:
                if column not in positions:
                    raise UnknownAttributeError(self.name, column)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    def has_attribute(self, name: str) -> bool:
        """Whether ``name`` is an attribute of this relation."""
        return name in self._positions

    def position(self, name: str) -> int:
        """Zero-based column position of ``name``."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` called ``name``."""
        return self.attributes[self.position(name)]

    def text_attributes(self) -> tuple[Attribute, ...]:
        """Attributes that participate in full-text sample search."""
        return tuple(attribute for attribute in self.attributes if attribute.fulltext)

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"relation {self.name} (pk: {', '.join(self.primary_key) or '-'})"]
        lines.extend(f"  {attribute.describe()}" for attribute in self.attributes)
        lines.extend(f"  fk {fk.name}: {fk.describe()}" for fk in self.foreign_keys)
        return "\n".join(lines)


class DatabaseSchema:
    """A named collection of relation schemas with validated FKs.

    Iteration order is declaration order, which keeps every derived
    artifact (schema graph, BFS, generated mappings) deterministic.
    """

    def __init__(self, relations: tuple[RelationSchema, ...] | list[RelationSchema]) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation
        self._foreign_keys: dict[str, ForeignKey] = {}
        for relation in self._relations.values():
            for foreign_key in relation.foreign_keys:
                if foreign_key.name in self._foreign_keys:
                    raise SchemaError(f"duplicate foreign key {foreign_key.name!r}")
                target = self._relations.get(foreign_key.target)
                if target is None:
                    raise UnknownRelationError(foreign_key.target)
                for column in foreign_key.target_columns:
                    if not target.has_attribute(column):
                        raise UnknownAttributeError(foreign_key.target, column)
                self._foreign_keys[foreign_key.name] = foreign_key

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation names in declaration order."""
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Schema of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """Every foreign key in the database, in declaration order."""
        return tuple(self._foreign_keys.values())

    def foreign_key(self, name: str) -> ForeignKey:
        """Look up a foreign key by its unique name."""
        try:
            return self._foreign_keys[name]
        except KeyError:
            raise SchemaError(f"unknown foreign key {name!r}") from None

    def attribute_count(self) -> int:
        """Total number of attributes across all relations."""
        return sum(relation.arity for relation in self)

    def text_attribute_pairs(self) -> tuple[tuple[str, str], ...]:
        """All ``(relation, attribute)`` pairs eligible for sample search."""
        return tuple(
            (relation.name, attribute.name)
            for relation in self
            for attribute in relation.text_attributes()
        )

    def describe(self) -> str:
        """Multi-line description of the whole schema."""
        return "\n".join(relation.describe() for relation in self)
