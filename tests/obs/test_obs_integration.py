"""End-to-end observability tests: real searches, real span trees."""

import pytest

from repro import obs
from repro.cli import main
from repro.core.naive import NAIVE_PHASES, NaiveEngine
from repro.core.stats import PHASES, SearchStats
from repro.core.tpw import TPWEngine
from repro.keyword_search.engine import KeywordSearchEngine

SAMPLE = ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")


class TestSearchTrace:
    def test_demo_search_emits_phases_in_order(self, running_db):
        with obs.scoped():
            result = TPWEngine(running_db).search(SAMPLE)
        root = result.trace
        assert root is not None
        assert root.name == "tpw.search"
        phase_children = [
            child.name for child in root.children
            if child.name in ("tpw.locate", "tpw.pairwise",
                              "tpw.instantiate", "tpw.weave", "tpw.rank")
        ]
        assert phase_children == [
            "tpw.locate", "tpw.pairwise", "tpw.instantiate",
            "tpw.weave", "tpw.rank",
        ]
        assert root.find_all("tpw.weave.level"), "per-level weave spans"
        assert root.find_all("tpw.instantiate.pair")
        assert root.attributes["candidates"] == result.n_candidates

    def test_stats_are_derivable_from_the_trace(self, running_db):
        with obs.scoped():
            result = TPWEngine(running_db).search(SAMPLE)
        assert SearchStats.from_span(result.trace) == result.stats

    def test_single_column_stats_from_trace(self, running_db):
        with obs.scoped():
            result = TPWEngine(running_db).search(("Avatar",))
        assert SearchStats.from_span(result.trace) == result.stats

    def test_trace_absent_when_disabled(self, running_db):
        result = TPWEngine(running_db).search(SAMPLE)
        assert result.trace is None
        assert result.stats.timings["total"] > 0  # timing survives

    def test_metrics_accumulate_during_search(self, running_db):
        with obs.scoped():
            TPWEngine(running_db).search(SAMPLE)
            snapshot = obs.get_metrics().snapshot()
        counters = snapshot["counters"]
        assert counters["repro.pairwise.walks"] > 0
        assert counters["repro.instantiate.queries"] > 0
        assert counters["repro.index.probes{index=inverted}"] > 0
        assert snapshot["histograms"]["repro.search.seconds"]["count"] == 1

    def test_keyword_search_span(self, running_db):
        with obs.scoped() as tracer:
            hits = KeywordSearchEngine(running_db).search(
                ["Avatar", "James Cameron"]
            )
        roots = [s for s in tracer.finished if s.name == "kwsearch.search"]
        assert len(roots) == 1
        assert roots[0].attributes["hits"] == len(hits)
        assert roots[0].find("tpw.search") is not None


class TestTimingsAlwaysComplete:
    def test_tpw_timings_on_empty_search(self, running_db):
        result = TPWEngine(running_db).search(
            ("no-such-value-anywhere", "also-missing")
        )
        assert result.n_candidates == 0
        # Early return must still leave every phase key present.
        assert set(result.stats.timings) == set(PHASES)
        assert result.stats.timings["weave"] == 0.0

    def test_default_stats_carry_all_phases(self):
        assert set(SearchStats().timings) == set(PHASES)

    def test_naive_timings_on_empty_search(self, running_db):
        result = NaiveEngine(running_db).search(("no-such-value-anywhere",))
        assert set(result.timings) == set(NAIVE_PHASES)
        assert result.timings["validate"] == 0.0


class TestCliTracing:
    def test_demo_trace_prints_tree_and_metrics(self, capsys):
        assert main(["demo", "--trace"]) == 0
        output = capsys.readouterr().out
        assert "tpw.search" in output
        for name in ("tpw.locate", "tpw.pairwise", "tpw.instantiate",
                     "tpw.weave.level", "tpw.rank", "session.prune"):
            assert name in output, name
        assert "repro.pairwise.walks" in output

    def test_demo_trace_out_writes_parseable_jsonl(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["demo", "--trace-out", str(target)]) == 0
        roots, snapshot = obs.parse_jsonl(target.read_text(encoding="utf-8"))
        assert roots[0].name == "tpw.search"
        assert roots[0].find("tpw.weave.level") is not None
        assert snapshot is not None
        assert snapshot["counters"]["repro.weave.woven"] > 0
        # --trace-out alone must not dump the tree to stdout.
        assert "├─" not in capsys.readouterr().out

    def test_tracing_disabled_by_default(self, capsys):
        assert main(["demo"]) == 0
        assert "tpw.search [" not in capsys.readouterr().out
        assert not obs.tracing_enabled()

    def test_parser_accepts_flags_on_interactive(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["interactive", "--trace", "--log-level", "DEBUG"]
        )
        assert args.trace is True
        assert args.log_level == "DEBUG"


class TestLogging:
    def test_get_logger_namespaces(self):
        assert obs.get_logger("repro.core.tpw").name == "repro.core.tpw"
        assert obs.get_logger("other").name == "repro.other"

    def test_setup_logging_is_idempotent(self):
        import logging

        try:
            obs.setup_logging("DEBUG")
            obs.setup_logging("DEBUG")
            root = logging.getLogger("repro")
            flagged = [
                handler for handler in root.handlers
                if getattr(handler, "_repro_obs_handler", False)
            ]
            assert len(flagged) == 1
            assert root.level == logging.DEBUG
        finally:
            from repro.obs.log import teardown_logging

            teardown_logging()

    def test_log_emission_reaches_stream(self):
        import io

        from repro.obs.log import teardown_logging

        stream = io.StringIO()
        try:
            obs.setup_logging("DEBUG", stream=stream)
            obs.get_logger("repro.test").debug("hello %d", 42)
        finally:
            teardown_logging()
        assert "hello 42" in stream.getvalue()
