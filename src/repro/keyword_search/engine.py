"""The keyword-search engine: joined tuple trees for keyword queries."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import TPWConfig
from repro.core.tpw import TPWEngine
from repro.core.tuple_path import TuplePath
from repro.obs import get_logger, get_metrics, get_tracer
from repro.relational.database import Database
from repro.resilience.budget import NULL_BUDGET
from repro.text.errors import ErrorModel

_log = get_logger(__name__)


class KeywordResults(list):
    """A ranked hit list that also carries degradation state.

    Subclasses ``list`` so every existing caller that treats the search
    result as ``list[KeywordHit]`` keeps working; anytime-aware callers
    read :attr:`degraded` / :attr:`degradation` to see whether a budget
    stopped the underlying TPW search early.
    """

    #: ``True`` when the underlying search degraded (anytime result).
    degraded: bool = False
    #: ``Budget.summary()`` payload when degraded, else ``None``.
    degradation: dict | None = None


@dataclass(frozen=True)
class KeywordHit:
    """One answer: a tree of joined source tuples covering all keywords."""

    tuple_path: TuplePath
    #: The keywords, in query order.
    keywords: tuple[str, ...]

    @property
    def n_joins(self) -> int:
        """Number of joins in the answer tree (the proximity rank key)."""
        return self.tuple_path.n_joins

    def rows(self, db: Database) -> list[tuple[str, dict[str, object]]]:
        """The answer's tuples as ``(relation, row dict)`` pairs."""
        result = []
        for vertex in sorted(self.tuple_path.rows):
            relation, row_id = self.tuple_path.tuple_at(vertex)
            result.append((relation, db.table(relation).row_as_dict(row_id)))
        return result

    def describe(self, db: Database) -> str:
        """Multi-line rendering of the joined tuples."""
        lines = [f"{self.n_joins}-join answer for {list(self.keywords)}:"]
        for relation, row in self.rows(db):
            rendered = ", ".join(
                f"{column}={value!r}" for column, value in list(row.items())[:4]
            )
            lines.append(f"  {relation}({rendered})")
        return "\n".join(lines)


class KeywordSearchEngine:
    """AND-semantics keyword search over a relational instance.

    Each keyword must be contained in some tuple of the answer tree;
    trees are joined along foreign keys, bounded by the same pairwise
    join limit the mapping search uses.
    """

    def __init__(
        self,
        db: Database,
        *,
        max_pairwise_joins: int = 2,
        model: ErrorModel | None = None,
    ) -> None:
        self.db = db
        self._engine = TPWEngine(
            db, TPWConfig(pmnj=max_pairwise_joins), model=model
        )

    def search(
        self, keywords: Sequence[str], *, limit: int = 0, budget=NULL_BUDGET
    ) -> KeywordResults:
        """All joined tuple trees covering every keyword, ranked.

        Ranking: fewer joins first, then the engine's match score
        ordering.  ``limit=0`` returns everything.

        ``budget`` (a :class:`~repro.resilience.Budget`) threads into
        the underlying TPW search: when it runs out, the hits found so
        far come back with ``degraded=True`` on the returned
        :class:`KeywordResults` instead of an exception.
        """
        query = tuple(str(keyword) for keyword in keywords)
        with get_tracer().span(
            "kwsearch.search", keywords=len(query), limit=limit
        ) as span:
            result = self._engine.search(query, budget=budget)
            hits = KeywordResults(
                KeywordHit(tuple_path=path, keywords=query)
                for candidate in result.candidates
                for path in candidate.tuple_paths
            )
            hits.sort(
                key=lambda hit: (hit.n_joins, hit.tuple_path.describe())
            )
            if limit:
                hits = KeywordResults(hits[:limit])
            hits.degraded = result.degraded
            hits.degradation = result.degradation
            span.set("hits", len(hits))
            if hits.degraded:
                span.set("degraded", True)
        get_metrics().counter("repro.kwsearch.searches").inc()
        _log.debug("keyword search %r returned %d hits", query, len(hits))
        return hits
