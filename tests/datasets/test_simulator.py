"""Tests for the simulated sample feeder."""

import pytest

from repro.datasets.simulator import SampleFeeder, average_samples_to_goal


@pytest.fixture(scope="module")
def simple_task(task_sets):
    return task_sets[0].tasks[0]  # ts1-m3


class TestSampleFeeder:
    def test_converges_to_goal(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=0).run()
        assert result.converged
        assert result.matched_goal

    def test_sample_count_at_least_one_row(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=0).run()
        assert result.n_samples >= simple_task.target_size

    def test_history_starts_after_first_row(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=0).run()
        first_samples, _count = result.candidate_history[0]
        assert first_samples == simple_task.target_size

    def test_candidate_counts_non_increasing(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=1).run()
        counts = [count for _samples, count in result.candidate_history]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_typed_characters_accumulated(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=0).run()
        assert result.typed_characters >= result.n_samples  # ≥1 char each

    def test_deterministic_for_seed(self, yahoo_db, simple_task):
        one = SampleFeeder(yahoo_db, simple_task, seed=3).run()
        two = SampleFeeder(yahoo_db, simple_task, seed=3).run()
        assert one.n_samples == two.n_samples
        assert one.candidate_history == two.candidate_history

    def test_search_time_recorded(self, yahoo_db, simple_task):
        result = SampleFeeder(yahoo_db, simple_task, seed=0).run()
        assert result.search_seconds > 0

    def test_max_samples_budget(self, yahoo_db, simple_task):
        feeder = SampleFeeder(yahoo_db, simple_task, seed=0, max_samples=3)
        result = feeder.run()
        assert result.n_samples <= 3

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_all_task_sets_converge(self, yahoo_db, task_sets, set_index):
        task = task_sets[set_index].tasks[0]
        result = SampleFeeder(yahoo_db, task, seed=7).run()
        assert result.converged and result.matched_goal


class TestGoalNeverPruned:
    """The invariant documented in the module: samples drawn from the
    goal's own output can never eliminate the goal."""

    @pytest.mark.parametrize("seed", range(4))
    def test_goal_survives_entire_run(self, yahoo_db, task_sets, seed):
        task = task_sets[2].tasks[1]  # 4 joins, m=4: plenty of pruning
        result = SampleFeeder(yahoo_db, task, seed=seed).run()
        # Either converged on the goal, or the goal is still among the
        # candidates when the budget ran out.
        assert result.matched_goal or not result.converged


class TestAverageSamples:
    def test_average_in_expected_range(self, yahoo_db, simple_task):
        average = average_samples_to_goal(
            yahoo_db, simple_task, n_runs=5, seed=1
        )
        # Paper's Table 1: roughly m to 3m samples for these tasks.
        assert simple_task.target_size <= average <= 6 * simple_task.target_size
