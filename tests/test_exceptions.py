"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DatasetError,
    IntegrityError,
    QueryError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
    SessionError,
    UnknownAttributeError,
    UnknownRelationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            SchemaError,
            IntegrityError,
            QueryError,
            SearchBudgetExceeded,
            SessionError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_unknown_relation_is_schema_error(self):
        assert issubclass(UnknownRelationError, SchemaError)

    def test_unknown_attribute_is_schema_error(self):
        assert issubclass(UnknownAttributeError, SchemaError)


class TestMessages:
    def test_unknown_relation_carries_name(self):
        error = UnknownRelationError("movies")
        assert error.name == "movies"
        assert "movies" in str(error)

    def test_unknown_attribute_carries_pair(self):
        error = UnknownAttributeError("movie", "tittle")
        assert error.relation == "movie"
        assert error.attribute == "tittle"
        assert "movie" in str(error) and "tittle" in str(error)

    def test_budget_exceeded_carries_limit(self):
        error = SearchBudgetExceeded("paths", 100)
        assert error.limit == 100
        assert "100" in str(error)

    def test_single_catch_at_api_boundary(self, running_db):
        """Client code can wrap every library failure in one except."""
        from repro import TPWEngine

        with pytest.raises(ReproError):
            TPWEngine(running_db).search(())
