#!/usr/bin/env python
"""Benchmark regression gate — thin wrapper over ``repro.bench.regress``.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/regress.py --check
    PYTHONPATH=src python benchmarks/regress.py --measure --update

See :mod:`repro.bench.regress` for the record format and thresholds.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.bench.regress import main
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.bench.regress import main

if __name__ == "__main__":
    sys.exit(main())
