"""Scenario: plugging your own source database into the engine.

Run with::

    python examples/custom_source.py

Everything in the library is schema-agnostic: define relations, keys
and foreign keys, load rows, and the sample search works unchanged.
This example builds a small university source (students, courses,
departments, enrollments) and derives a transcript-style target purely
from samples — including a case where a typo in the sample is absorbed
by swapping in the edit-distance error model.
"""

from repro import (
    Attribute,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    MappingSession,
    RelationSchema,
    TPWEngine,
)
from repro.text.errors import EditDistanceModel

_INT = DataType.INTEGER


def build_university() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema(
                "student",
                (
                    Attribute("sid", _INT, fulltext=False),
                    Attribute("name"),
                    Attribute("hometown"),
                ),
                ("sid",),
            ),
            RelationSchema(
                "department",
                (
                    Attribute("did", _INT, fulltext=False),
                    Attribute("dept_name"),
                    Attribute("building"),
                ),
                ("did",),
            ),
            RelationSchema(
                "course",
                (
                    Attribute("cid", _INT, fulltext=False),
                    Attribute("title"),
                    Attribute("did", _INT, fulltext=False),
                ),
                ("cid",),
                (ForeignKey("course_did", "course", ("did",), "department", ("did",)),),
            ),
            RelationSchema(
                "enrollment",
                (
                    Attribute("sid", _INT, fulltext=False),
                    Attribute("cid", _INT, fulltext=False),
                    Attribute("grade"),
                ),
                ("sid", "cid"),
                (
                    ForeignKey("enroll_sid", "enrollment", ("sid",), "student", ("sid",)),
                    ForeignKey("enroll_cid", "enrollment", ("cid",), "course", ("cid",)),
                ),
            ),
        ]
    )
    db = Database(schema, name="university")
    students = [
        (1, "Alice Zhang", "Portland"),
        (2, "Bruno Costa", "Lisbon"),
        (3, "Chidi Okafor", "Lagos"),
    ]
    departments = [
        (1, "Computer Science", "Gates Hall"),
        (2, "History", "Old Quad"),
    ]
    courses = [
        (1, "Database Systems", 1),
        (2, "Operating Systems", 1),
        (3, "Medieval Europe", 2),
    ]
    enrollments = [
        (1, 1, "A"),
        (1, 3, "B+"),
        (2, 1, "A-"),
        (2, 2, "B"),
        (3, 3, "A"),
    ]
    for row in students:
        db.insert("student", row)
    for row in departments:
        db.insert("department", row)
    for row in courses:
        db.insert("course", row)
    for row in enrollments:
        db.insert("enrollment", row)
    db.validate_referential_integrity()
    return db


def main() -> None:
    db = build_university()
    print(f"source: {db.summary()}\n")

    # Target: student name, course title, department name.
    session = MappingSession(db, ["Student", "Course", "Department"])
    session.input(0, 0, "Alice Zhang")
    session.input(0, 1, "Database Systems")
    session.input(0, 2, "Computer Science")
    print(f"after first row: {len(session.candidates)} candidate(s)")
    mapping = session.best_mapping()
    assert mapping is not None
    print(f"mapping: {mapping.describe()}\n")
    print(mapping.to_sql(db.schema, column_names=["Student", "Course", "Department"]))
    print()
    for row in mapping.execute(db):
        print(f"  {row}")

    # Typo tolerance: 'Operating Sistems' under the edit-distance model.
    print("\nwith a typo ('Operating Sistems') and the edit-distance model:")
    engine = TPWEngine(db, model=EditDistanceModel(max_distance=1))
    result = engine.search(("Bruno Costa", "Operating Sistems"))
    for candidate in result.candidates:
        print(f"  {candidate.describe()}")
    assert result.n_candidates >= 1


if __name__ == "__main__":
    main()
