"""Unit tests for row storage."""

import pytest

from repro.exceptions import IntegrityError
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture()
def movie_table() -> Table:
    schema = RelationSchema(
        "movie",
        (
            Attribute("mid", DataType.INTEGER, fulltext=False),
            Attribute("title"),
            Attribute("runtime", DataType.INTEGER),
        ),
        ("mid",),
    )
    return Table(schema)


class TestInsert:
    def test_positional(self, movie_table):
        row_id = movie_table.insert((1, "Avatar", 162))
        assert row_id == 0
        assert movie_table.row(0) == (1, "Avatar", 162)

    def test_row_ids_sequential(self, movie_table):
        assert movie_table.insert((1, "A", 100)) == 0
        assert movie_table.insert((2, "B", 100)) == 1

    def test_mapping_insert(self, movie_table):
        movie_table.insert({"mid": 3, "title": "C"})
        assert movie_table.row(0) == (3, "C", None)

    def test_mapping_unknown_attribute(self, movie_table):
        with pytest.raises(IntegrityError):
            movie_table.insert({"mid": 1, "nope": "x"})

    def test_wrong_arity(self, movie_table):
        with pytest.raises(IntegrityError):
            movie_table.insert((1, "Avatar"))

    def test_type_coercion_applied(self, movie_table):
        movie_table.insert(("7", "Avatar", "90"))
        assert movie_table.row(0) == (7, "Avatar", 90)

    def test_duplicate_pk_rejected(self, movie_table):
        movie_table.insert((1, "A", 100))
        with pytest.raises(IntegrityError):
            movie_table.insert((1, "B", 100))

    def test_null_pk_rejected(self, movie_table):
        with pytest.raises(IntegrityError):
            movie_table.insert((None, "A", 100))


class TestAccess:
    def test_value(self, movie_table):
        movie_table.insert((1, "Avatar", 162))
        assert movie_table.value(0, "title") == "Avatar"

    def test_column(self, movie_table):
        movie_table.insert((1, "A", 100))
        movie_table.insert((2, "B", 110))
        assert movie_table.column("title") == ["A", "B"]

    def test_row_as_dict(self, movie_table):
        movie_table.insert((1, "A", 100))
        assert movie_table.row_as_dict(0) == {"mid": 1, "title": "A", "runtime": 100}

    def test_lookup_pk(self, movie_table):
        movie_table.insert((5, "A", 100))
        assert movie_table.lookup_pk((5,)) == 0
        assert movie_table.lookup_pk((6,)) is None

    def test_lookup_pk_without_key_raises(self):
        schema = RelationSchema("log", (Attribute("line"),))
        table = Table(schema)
        with pytest.raises(IntegrityError):
            table.lookup_pk(("x",))

    def test_iteration(self, movie_table):
        movie_table.insert((1, "A", 100))
        movie_table.insert((2, "B", 110))
        assert [row[0] for row in movie_table] == [1, 2]

    def test_len_and_row_ids(self, movie_table):
        assert len(movie_table) == 0
        movie_table.insert((1, "A", 100))
        assert len(movie_table) == 1
        assert list(movie_table.row_ids()) == [0]

    def test_name(self, movie_table):
        assert movie_table.name == "movie"
