"""Structured logging under the ``repro.*`` namespace.

The library itself never configures handlers beyond a ``NullHandler``
on the ``repro`` root logger (the standard library-friendly default);
applications — including our own CLI — opt in with :func:`setup_logging`
or by exporting ``REPRO_LOG_LEVEL`` (e.g. ``REPRO_LOG_LEVEL=DEBUG``)
before the first ``repro.obs`` import.

Modules obtain loggers with ``get_logger(__name__)``; any name outside
the namespace is prefixed, so ``get_logger("bench")`` logs as
``repro.bench``.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO

NAMESPACE = "repro"

_root = logging.getLogger(NAMESPACE)
if not _root.handlers:
    _root.addHandler(logging.NullHandler())

#: Marker attribute distinguishing our handler from user-installed ones.
_HANDLER_FLAG = "_repro_obs_handler"

DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger inside the ``repro`` namespace."""
    if not name:
        return _root
    if name == NAMESPACE or name.startswith(NAMESPACE + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{NAMESPACE}.{name}")


def setup_logging(
    level: int | str | None = None,
    *,
    stream: IO[str] | None = None,
    fmt: str = DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: calling again replaces the handler (so the level and
    stream can be changed at runtime).  ``level`` defaults to the
    ``REPRO_LOG_LEVEL`` environment variable, then ``WARNING``.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed

    for handler in list(_root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            _root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_FLAG, True)
    _root.addHandler(handler)
    _root.setLevel(level)
    _root.propagate = False
    return _root


def teardown_logging() -> None:
    """Remove the handler installed by :func:`setup_logging` (tests)."""
    for handler in list(_root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            _root.removeHandler(handler)
    _root.setLevel(logging.NOTSET)
