"""Documentation quality gate: every public item carries a docstring.

Walks every module under ``repro`` and asserts that each public module,
class, function and method (not underscore-prefixed, defined in this
package) has a non-empty docstring — the deliverable's "doc comments on
every public item" requirement, enforced mechanically.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in inspect.getmembers(module):
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_repro_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_repro_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_method_documented(self):
        undocumented = []
        for module in iter_repro_modules():
            for class_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, method in inspect.getmembers(cls):
                    if name.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(method)
                        or isinstance(
                            inspect.getattr_static(cls, name, None), property
                        )
                    ):
                        continue
                    qualified = f"{module.__name__}.{class_name}.{name}"
                    if inspect.isfunction(method):
                        if method.__module__ != module.__name__:
                            continue
                        # getdoc() walks the MRO: an override of a
                        # documented base method (e.g. an ErrorModel's
                        # ``contains``) inherits its contract.
                        documented = bool((inspect.getdoc(method) or "").strip())
                    else:
                        prop = inspect.getattr_static(cls, name)
                        documented = bool(
                            (inspect.getdoc(prop) or "").strip()
                        )
                    if not documented:
                        undocumented.append(qualified)
        assert undocumented == []
