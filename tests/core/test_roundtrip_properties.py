"""Property-based round trips: persistence and materialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.materialize import materialize_mapping
from repro.core.persistence import session_from_dict, session_to_dict
from repro.core.session import MappingSession
from repro.core.tpw import TPWEngine

# Cell values drawn from strings that actually occur in the running
# example plus noise that does not.
CELL_VALUES = (
    "Avatar", "Big Fish", "Harry Potter", "Titanic", "Ed Wood",
    "James Cameron", "Tim Burton", "David Yates", "J. K. Rowling",
    "not in the source", "zzz",
)

cell_events = st.lists(
    st.tuples(
        st.integers(0, 3),            # row
        st.integers(0, 1),            # column
        st.sampled_from(CELL_VALUES),
    ),
    max_size=8,
)


def drive(session: MappingSession, events) -> None:
    for row, column, value in events:
        try:
            session.input(row, column, value)
        except Exception:
            # rows below 0 before the search are rejected; fine.
            pass


class TestPersistenceProperties:
    @settings(max_examples=30)
    @given(cell_events)
    def test_round_trip_preserves_candidates(self, running_db, events):
        session = MappingSession(running_db, ["Name", "Director"])
        drive(session, events)
        payload = session_to_dict(session)
        restored = session_from_dict(running_db, payload)
        assert restored.status is session.status
        assert [c.mapping.signature() for c in restored.candidates] == [
            c.mapping.signature() for c in session.candidates
        ]
        assert restored.sample_count() == session.sample_count()


class TestMaterializeProperties:
    SAMPLES = [
        ("Avatar", "James Cameron"),
        ("Harry Potter", "David Yates"),
        ("Ed Wood",),
    ]

    @settings(max_examples=20)
    @given(st.sampled_from(SAMPLES), st.integers(0, 5))
    def test_row_count_matches_execute(self, running_db, samples, limit):
        result = TPWEngine(running_db).search(samples)
        for candidate in result.candidates:
            target = materialize_mapping(
                candidate.mapping, running_db, limit=limit
            )
            rows = list(target.table("target"))
            executed = candidate.mapping.execute(running_db)
            if limit:
                assert len(rows) == min(limit, len(executed))
            else:
                assert rows == executed

    @settings(max_examples=20)
    @given(st.sampled_from(SAMPLES))
    def test_distinct_is_set_of_bag(self, running_db, samples):
        result = TPWEngine(running_db).search(samples)
        for candidate in result.candidates:
            bag = materialize_mapping(candidate.mapping, running_db)
            dedup = materialize_mapping(
                candidate.mapping, running_db, distinct=True
            )
            assert set(dedup.table("target")) == set(bag.table("target"))
            rows = list(dedup.table("target"))
            assert len(rows) == len(set(rows))
