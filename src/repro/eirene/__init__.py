"""A working Eirene-style comparator: fitting mappings to data examples.

Eirene (Alexe, ten Cate, Kolaitis, Tan — SIGMOD 2011) designs schema
mappings from *paired* data examples: the user authors a small source
instance fragment together with the target rows it should produce, and
the system computes the fitting mappings.  The paper under reproduction
compares MWeaver against Eirene in its user study; beyond the study's
interaction cost model (:mod:`repro.study.tools`), this package
implements the fitting step itself — restricted to our project-join
mapping language — so the workflow difference can be measured
mechanically:

* Eirene input: complete source tuples (keys included, typed twice to
  link joined tuples) **and** target rows;
* MWeaver input: target cell values only.

:func:`repro.eirene.fitting.authoring_cost` counts the cells each
workflow requires, grounding the user study's keystroke claim in an
executable artifact rather than a constant.
"""

from repro.eirene.examples import ExamplePair
from repro.eirene.fitting import authoring_cost, fit_mappings

__all__ = ["ExamplePair", "fit_mappings", "authoring_cost"]
