"""Tests for the crash-safe session journal (append, replay, compact)."""

import json

import pytest

from repro.resilience import SessionJournal, replay_journal
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFault


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "sessions.journal"


class TestRoundTrip:
    def test_create_cells_replay(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name", "Director"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.record_cell("s1", 0, 1, "James Cameron")
        journal.close()

        live = replay_journal(journal_path)
        assert set(live) == {"s1"}
        session = live["s1"]
        assert session.dataset == "running"
        assert session.columns == ["Name", "Director"]
        assert session.grid() == {(0, 0): "Avatar", (0, 1): "James Cameron"}

    def test_delete_removes_the_session(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.record_create("s2", "running", ["Name"])
        journal.record_delete("s1")
        journal.close()
        assert set(replay_journal(journal_path)) == {"s2"}

    def test_last_write_per_cell_wins(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.record_cell("s1", 0, 0, "Big Fish")
        journal.close()
        assert replay_journal(journal_path)["s1"].grid() == {
            (0, 0): "Big Fish"
        }

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_journal(tmp_path / "absent.journal") == {}

    def test_on_irrelevant_is_preserved(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create(
            "s1", "running", ["Name"], on_irrelevant="apply"
        )
        journal.close()
        assert replay_journal(journal_path)["s1"].on_irrelevant == "apply"


class TestTornWrites:
    def test_torn_tail_is_tolerated(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.close()
        with journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "cell", "session_id": "s1", "ro')  # torn
        live = replay_journal(journal_path)
        assert live["s1"].grid() == {(0, 0): "Avatar"}

    def test_orphan_cells_are_skipped(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_cell("ghost", 0, 0, "Avatar")  # no create record
        journal.record_create("s1", "running", ["Name"])
        journal.close()
        live = replay_journal(journal_path)
        assert set(live) == {"s1"}
        assert live["s1"].cells == []

    def test_non_object_lines_are_skipped(self, journal_path):
        journal_path.write_text('[1, 2, 3]\n"just a string"\n')
        assert replay_journal(journal_path) == {}


class TestCompaction:
    def test_compact_rewrites_only_live_state(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.record_cell("s1", 0, 0, "Avatar")
        journal.record_cell("s1", 0, 0, "Big Fish")  # superseded below
        journal.record_create("s2", "running", ["Name"])
        journal.record_delete("s2")

        live = replay_journal(journal_path)  # reads the flushed file
        journal.compact(live)

        lines = journal_path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["op"] for r in records] == ["create", "cell"]
        # Replay after compact gives back the same state.
        assert replay_journal(journal_path)["s1"].grid() == {
            (0, 0): "Big Fish"
        }

        # The journal stays appendable after the rewrite.
        journal.record_cell("s1", 1, 0, "Ed Wood")
        journal.close()
        assert replay_journal(journal_path)["s1"].grid() == {
            (0, 0): "Big Fish", (1, 0): "Ed Wood",
        }


class TestDurabilityKnobs:
    def test_fsync_mode_appends(self, journal_path):
        journal = SessionJournal(journal_path, fsync=True)
        journal.record_create("s1", "running", ["Name"])
        journal.close()
        assert set(replay_journal(journal_path)) == {"s1"}

    def test_close_is_idempotent(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.close()
        journal.close()

    def test_every_record_carries_version_and_timestamp(self, journal_path):
        journal = SessionJournal(journal_path)
        journal.record_create("s1", "running", ["Name"])
        journal.close()
        record = json.loads(journal_path.read_text().strip())
        assert record["v"] == 1
        assert record["ts"] > 0


class TestFaultPoint:
    def test_journal_append_fault_surfaces(self, journal_path):
        journal = SessionJournal(journal_path)
        with FaultInjector([FaultSpec("journal.append")]):
            with pytest.raises(InjectedFault):
                journal.record_cell("s1", 0, 0, "Avatar")
        # The injector gone, appends work again.
        journal.record_create("s1", "running", ["Name"])
        journal.close()
        assert set(replay_journal(journal_path)) == {"s1"}
