"""Cluster bench: scale-out capacity and failover-under-load.

Boots the real topology — three ``mweaver shard`` subprocesses behind
an ``mweaver cluster`` coordinator (R=2) — and measures four things:

``cluster/single_node``
    One extra shard-mode node measured directly, same flags, same
    machine.  The in-record reference every other number is compared
    against (the committed ``BENCH_service.json`` was measured on
    whatever hardware ran that session; this one is measured *here*).

``cluster/capacity3``
    Per-shard saturation throughput of the three cluster shards,
    measured one shard at a time and summed.  Sequential on purpose:
    the bench host timeshares every shard process over
    ``os.cpu_count()`` cores, so hammering all three at once measures
    the host's core count, not the cluster.  With one host per shard —
    the deployment the topology exists for — the sum is the cluster's
    aggregate capacity.  ``meta.concurrent3_rps`` records the honest
    same-host concurrent number alongside.

``cluster/routed``
    The same flow load through the coordinator: one extra HTTP hop,
    plus placement, journaling and replica fan-out on every write.

``cluster/failover``
    The headline robustness number: routed load with client-side
    retries while one shard is ``kill -9``-ed mid-bench.  Zero request
    errors (refusals are absorbed by retries and counted separately)
    and a bounded p50 are the acceptance properties; the regression
    gate enforces both (errors via the correctness gate, latency via
    the baseline threshold).

``cluster/repair``
    Self-healing convergence time.  The killed shard is respawned on
    its old port (``pinned_args``, same as the supervisor does) and
    ``wall_s`` measures replacement-ready → repair-converged: every
    shard re-admitted through the heartbeat half-open path and a fresh
    anti-entropy round verifying every replica pair in sync.  Failure
    to converge within the deadline records an error, tripping the
    correctness gate.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Any

from repro.bench.service_load import LoadResult, percentile, run_load
from repro.cluster import CoordinatorProcess, ServerProcess, ShardProcess

__all__ = ["measure_cluster"]


def _combined_entry(results: list[LoadResult]) -> dict[str, Any]:
    """One workload entry summing throughput across independent nodes.

    Latency percentiles pool every request (each node serves its own
    clients, so the pooled distribution is what a spread-out client
    population sees); throughput is the sum of per-node rates.
    """
    latencies = [s for result in results for s in result.latencies_s]
    throughput = sum(result.throughput_rps for result in results)
    return {
        "wall_s": percentile(latencies, 95),
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "throughput_rps": round(throughput, 2),
        "clients": sum(result.clients for result in results),
        "requests": sum(result.requests for result in results),
        "errors": sum(result.errors for result in results),
        "mismatches": sum(result.mismatches for result in results),
        "degraded": sum(result.degraded for result in results),
        "refused": sum(result.refused for result in results),
    }


def measure_cluster(
    *,
    clients: int = 4,
    flows_per_client: int = 6,
    n_shards: int = 3,
    replication: int = 2,
    kill_after_s: float = 0.2,
) -> dict[str, Any]:
    """Measure the cluster bench into one ``bench-record`` dict."""
    from repro.bench.regress import RECORD_KIND, calibrate

    record: dict[str, Any] = {
        "kind": RECORD_KIND,
        "name": "cluster",
        "calibration_s": calibrate(),
        "meta": {
            "shards": n_shards,
            "replication": replication,
            "clients": clients,
            "flows_per_client": flows_per_client,
            "cores": os.cpu_count(),
        },
        "workloads": {},
    }
    meta = record["meta"]

    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        # -- single-node reference (its own process, not in the ring) --
        reference = ShardProcess(name="reference", workers=8)
        reference.start().wait_ready()
        try:
            run_load(reference.host, reference.port,
                     clients=1, flows_per_client=1)  # warm caches
            single = run_load(
                reference.host, reference.port,
                clients=clients, flows_per_client=flows_per_client,
            )
        finally:
            reference.terminate()
        record["workloads"]["cluster/single_node"] = (
            single.to_workload_entry()
        )
        meta["single_node_rps"] = round(single.throughput_rps, 2)

        shards = [
            ShardProcess(name=f"shard{i}", workers=8)
            for i in range(n_shards)
        ]
        coordinator: CoordinatorProcess | None = None
        try:
            for shard in shards:
                shard.start()
            for shard in shards:
                shard.wait_ready()

            # -- aggregate capacity: one shard at a time, summed.
            # Measured before the coordinator boots so its heartbeat
            # and replication threads don't timeshare the bench host's
            # core(s) with the shard under measurement.
            per_shard: list[LoadResult] = []
            for shard in shards:
                run_load(shard.host, shard.port,
                         clients=1, flows_per_client=1)
                per_shard.append(run_load(
                    shard.host, shard.port,
                    clients=clients, flows_per_client=flows_per_client,
                ))
            record["workloads"]["cluster/capacity3"] = (
                _combined_entry(per_shard)
            )
            meta["per_shard_rps"] = [
                round(result.throughput_rps, 2) for result in per_shard
            ]
            meta["aggregate_capacity_rps"] = round(
                sum(r.throughput_rps for r in per_shard), 2
            )
            meta["capacity_vs_single_node"] = round(
                meta["aggregate_capacity_rps"] / single.throughput_rps, 2
            ) if single.throughput_rps else None

            # Honest same-host concurrent number: all shards hammered
            # at once share this host's cores, so this measures the
            # bench box, not the topology.  Recorded in meta, not gated.
            concurrent: list[LoadResult | None] = [None] * n_shards

            def _direct(index: int) -> None:
                concurrent[index] = run_load(
                    shards[index].host, shards[index].port,
                    clients=clients, flows_per_client=flows_per_client,
                )

            threads = [
                threading.Thread(target=_direct, args=(i,))
                for i in range(n_shards)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            meta["concurrent3_rps"] = round(
                sum(r.throughput_rps for r in concurrent if r), 2
            )

            coordinator = CoordinatorProcess(
                [shard.address for shard in shards],
                replication=replication,
                journal_dir=os.path.join(tmp, "coordinator"),
                repair_interval_s=0.25,
            ).start().wait_ready()

            # -- through the coordinator ------------------------------
            run_load(coordinator.host, coordinator.port,
                     clients=1, flows_per_client=1)
            routed = run_load(
                coordinator.host, coordinator.port,
                clients=clients, flows_per_client=flows_per_client,
            )
            record["workloads"]["cluster/routed"] = (
                routed.to_workload_entry()
            )
            meta["routed_rps"] = round(routed.throughput_rps, 2)

            # -- failover under load: kill -9 one shard mid-bench.
            # Three times the flows so the run comfortably outlasts
            # the kill timer and most of it happens with a dead shard
            # in the ring.
            victim = shards[0]
            killer = threading.Timer(kill_after_s, victim.kill)
            killer.start()
            try:
                failover = run_load(
                    coordinator.host, coordinator.port,
                    clients=clients,
                    flows_per_client=flows_per_client * 3,
                    retry_refusals=True,
                )
            finally:
                killer.cancel()
                killer.join()
            if victim.alive():  # bench outran the timer: kill and redo
                victim.kill()
                failover = run_load(
                    coordinator.host, coordinator.port,
                    clients=clients,
                    flows_per_client=flows_per_client * 3,
                    retry_refusals=True,
                )
            record["workloads"]["cluster/failover"] = (
                failover.to_workload_entry()
            )
            meta["failover_refusals"] = failover.refused
            meta["failover_p50_ms"] = round(failover.p50_s * 1000, 2)

            import json as _json

            status, raw = coordinator.request("GET", "/healthz")
            rounds_before = 0
            if status == 200:
                health = _json.loads(raw)
                meta["failovers"] = health.get("failovers", 0)
                meta["shards_up_after_kill"] = health.get("shards_up", 0)
                rounds_before = health.get("repair", {}).get("rounds", 0)

            # -- self-healing: respawn the killed shard on its old port
            # and measure anti-entropy repair convergence — replacement
            # ready until every shard is up and a fresh repair round
            # verifies every replica pair in sync.  Non-convergence
            # surfaces as an error so the correctness gate trips.
            respawned = ServerProcess(
                victim.pinned_args(), name=victim.name
            )
            respawned.start().wait_ready()
            heal_started = time.monotonic()
            try:
                deadline = heal_started + 120.0
                converged_at = None
                repair: dict[str, Any] = {}
                while time.monotonic() < deadline:
                    status, raw = coordinator.request("GET", "/healthz")
                    if status == 200:
                        health = _json.loads(raw)
                        repair = health.get("repair", {})
                        if (
                            health.get("shards_up") == n_shards
                            and repair.get("rounds", 0) > rounds_before
                            and repair.get("converged")
                        ):
                            converged_at = time.monotonic()
                            break
                    time.sleep(0.1)
                heal_s = (
                    converged_at - heal_started
                    if converged_at is not None
                    else 120.0
                )
                record["workloads"]["cluster/repair"] = {
                    "wall_s": round(heal_s, 6),
                    "p50_s": round(heal_s, 6),
                    "p95_s": round(heal_s, 6),
                    "throughput_rps": 0.0,
                    "clients": 0,
                    "requests": repair.get("rounds", 0),
                    "errors": 0 if converged_at is not None else 1,
                    "mismatches": 0,
                    "degraded": 0,
                    "refused": 0,
                }
                meta["repair_converge_s"] = round(heal_s, 3)
                meta["repair_reseats"] = repair.get("total_reseats", 0)
            finally:
                respawned.terminate()
        finally:
            if coordinator is not None:
                coordinator.terminate()
            for shard in shards:
                shard.terminate()
    return record
