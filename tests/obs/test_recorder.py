"""The flight recorder: rings, pinning, verdicts, serialization."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.recorder import FlightRecorder


def make_span_tree():
    """One finished request-shaped span tree via a scoped tracer."""
    with obs.scoped() as tracer:
        with tracer.span("service.request", route="GET /x") as root:
            with tracer.span("session.search"):
                pass
    return root


def make_error_span_tree():
    with obs.scoped() as tracer:
        try:
            with tracer.span("service.request"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
    return tracer.finished[0]


class TestRecordingBasics:
    def test_record_get_and_list(self):
        recorder = FlightRecorder(capacity=4, slow_s=1.0)
        root = make_span_tree()
        record = recorder.record(
            route="GET /x", status=200, duration_s=0.01, spans=(root,)
        )
        assert recorder.get(record.id) is record
        (row,) = recorder.list()
        assert row["id"] == record.id
        assert row["route"] == "GET /x"
        assert row["status"] == 200
        assert row["interesting"] is False
        assert row["span_count"] == 2  # request + search

    def test_ids_are_monotonic_and_prefixed(self):
        recorder = FlightRecorder(capacity=4)
        first, second = recorder.next_id(), recorder.next_id()
        assert first == "req-000001"
        assert second == "req-000002"

    def test_detail_serializes_span_records(self):
        recorder = FlightRecorder(capacity=4)
        record = recorder.record(
            route="GET /x", status=200, duration_s=0.01,
            spans=(make_span_tree(),),
        )
        detail = record.detail()
        assert detail["spans"][0]["name"] == "service.request"
        assert "epoch_s" in detail["spans"][0]
        roots = obs.records_to_spans(detail["spans"])
        assert roots[0].children[0].name == "session.search"

    def test_missing_id_returns_none(self):
        assert FlightRecorder(capacity=4).get("req-999999") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestVerdicts:
    def test_slow_requests_are_pinned(self):
        recorder = FlightRecorder(capacity=4, slow_s=0.5)
        record = recorder.record(
            route="GET /x", status=200, duration_s=0.9, spans=()
        )
        assert record.interesting
        assert "slow" in record.reasons
        assert recorder.list(interesting_only=True)[0]["id"] == record.id

    def test_5xx_is_an_error_verdict(self):
        recorder = FlightRecorder(capacity=4)
        record = recorder.record(
            route="GET /x", status=503, duration_s=0.01, spans=()
        )
        assert "error" in record.reasons

    def test_errored_span_is_a_verdict_even_on_200(self):
        recorder = FlightRecorder(capacity=4)
        record = recorder.record(
            route="GET /x", status=200, duration_s=0.01,
            spans=(make_error_span_tree(),),
        )
        assert "span_error" in record.reasons

    def test_caller_reasons_pin_too(self):
        recorder = FlightRecorder(capacity=4)
        record = recorder.record(
            route="POST /cells", status=200, duration_s=0.01, spans=(),
            reasons=("degraded", "worker_killed"),
        )
        assert record.interesting
        assert set(record.reasons) >= {"degraded", "worker_killed"}

    def test_healthy_fast_request_is_not_interesting(self):
        recorder = FlightRecorder(capacity=4, slow_s=1.0)
        record = recorder.record(
            route="GET /x", status=200, duration_s=0.01, spans=()
        )
        assert not record.interesting
        assert recorder.list(interesting_only=True) == []


class TestEviction:
    def test_healthy_burst_cannot_evict_pinned_requests(self):
        recorder = FlightRecorder(capacity=3, slow_s=0.5)
        pinned = recorder.record(
            route="GET /slow", status=200, duration_s=2.0, spans=()
        )
        for index in range(10):
            recorder.record(
                route=f"GET /fast{index}", status=200,
                duration_s=0.001, spans=(),
            )
        # Aged out of the recent ring, still reachable via interesting.
        assert recorder.get(pinned.id) is pinned
        assert recorder.list(interesting_only=True)[0]["id"] == pinned.id

    def test_evicted_everywhere_means_forgotten(self):
        recorder = FlightRecorder(capacity=2, slow_s=1000.0)
        first = recorder.record(
            route="GET /a", status=200, duration_s=0.01, spans=()
        )
        for route in ("GET /b", "GET /c"):
            recorder.record(
                route=route, status=200, duration_s=0.01, spans=()
            )
        assert recorder.get(first.id) is None
        stats = recorder.stats()
        assert stats["dropped"] == 1
        assert stats["recorded"] == 3

    def test_list_is_most_recent_first_and_limited(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            recorder.record(
                route=f"GET /{index}", status=200,
                duration_s=0.01, spans=(),
            )
        rows = recorder.list(limit=3)
        assert [row["route"] for row in rows] == [
            "GET /4", "GET /3", "GET /2",
        ]


class TestStats:
    def test_stats_shape(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(
            route="GET /x", status=200, duration_s=0.01, spans=()
        )
        assert recorder.stats() == {
            "capacity": 4,
            "recent": 1,
            "interesting": 0,
            "recorded": 1,
            "dropped": 0,
        }
