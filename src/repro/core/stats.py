"""Instrumentation counters for the sample search.

The paper's performance analysis (Tables 2–4, Figure 13) is entirely a
story about *how many paths exist at each stage*; :class:`SearchStats`
records exactly those numbers plus phase timings so the benchmark
harness can print the corresponding rows.

Since the :mod:`repro.obs` tracing layer landed, the span tree emitted
by :class:`~repro.core.tpw.TPWEngine` is the primary record of a search
— every counter below is also a span attribute — and ``SearchStats`` is
the flat view the bench tables consume.  :meth:`SearchStats.from_span`
rebuilds the full object from a ``tpw.search`` span tree (live or
reloaded from JSON-lines), which is what keeps traces and tables
guaranteed-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is cycle-free,
    from repro.obs.tracer import Span  # but keep stats importable standalone)

#: The search phases, in pipeline order; ``timings`` always carries all
#: of them (0.0 when a phase did not run) so reporting code can index
#: any key without guarding against early-return searches.
PHASES: tuple[str, ...] = (
    "locate", "pairwise", "instantiate", "weave", "rank", "total",
)


def _default_timings() -> dict[str, float]:
    return dict.fromkeys(PHASES, 0.0)


@dataclass
class SearchStats:
    """Counters and timings for one TPW sample search."""

    #: Number of (relation, attribute) occurrence hits per sample index.
    location_hits: dict[int, int] = field(default_factory=dict)
    #: Pairwise mapping paths generated, per key pair (i, j).
    pairwise_mapping_paths: int = 0
    #: Pairwise mapping paths with at least one supporting tuple path.
    pairwise_valid_mapping_paths: int = 0
    #: Pairwise tuple paths materialised (level 2 of the weave).
    pairwise_tuple_paths: int = 0
    #: Tuple paths *generated* by weaving, per level (size -> count);
    #: includes duplicates later removed by canonicalisation.
    woven_per_level: dict[int, int] = field(default_factory=dict)
    #: Distinct tuple paths *kept* per level after deduplication.
    kept_per_level: dict[int, int] = field(default_factory=dict)
    #: Complete tuple paths produced at the final level.
    complete_tuple_paths: int = 0
    #: Valid complete mapping paths extracted (the candidate count).
    valid_complete_mappings: int = 0
    #: Wall-clock seconds per phase; every :data:`PHASES` key is always
    #: present (0.0 for phases an early-return search never reached).
    timings: dict[str, float] = field(default_factory=_default_timings)

    def total_tuple_paths_processed(self) -> int:
        """The "# TP Woven" quantity of Table 4.

        Every tuple path the algorithm touched: the pairwise level plus
        everything generated while weaving.
        """
        return self.pairwise_tuple_paths + sum(self.woven_per_level.values())

    def level_profile(self) -> dict[int, int]:
        """Tuple paths kept at each level (Figure 13's series).

        Level 2 is the pairwise level; the final level holds the
        complete tuple paths.
        """
        profile = {2: self.pairwise_tuple_paths}
        profile.update(sorted(self.kept_per_level.items()))
        return profile

    @classmethod
    def from_span(cls, span: "Span") -> "SearchStats":
        """Derive the stats from a ``tpw.search`` span tree.

        The tree is the one attached to
        :attr:`repro.core.tpw.SearchResult.trace` (or reloaded via
        :func:`repro.obs.export.parse_jsonl`); counters come from span
        attributes, timings from span durations.  JSON round-trips turn
        integer dict keys into strings, so keyed attributes are stored
        stringly and converted back here.

        Raises :class:`ValueError` unless ``span`` is a ``tpw.search``
        span — passing any other tree used to *silently* return
        all-zero stats (easy to hit with a multi-search trace file;
        use :meth:`from_trace` for those).
        """
        if span.name != "tpw.search":
            raise ValueError(
                "SearchStats.from_span needs a tpw.search span, got "
                f"{span.name!r}; use SearchStats.from_trace to select a "
                "search out of a full trace"
            )
        stats = cls()
        stats.timings["total"] = span.duration
        stats.valid_complete_mappings = int(span.attributes.get("candidates", 0))
        for child in span.children:
            phase = child.name.rsplit(".", 1)[-1]
            if phase in stats.timings:
                stats.timings[phase] += child.duration
            attrs = child.attributes
            if child.name == "tpw.locate":
                stats.location_hits = {
                    int(key): count
                    for key, count in attrs.get("hits_by_key", {}).items()
                }
            elif child.name == "tpw.pairwise":
                stats.pairwise_mapping_paths = int(attrs.get("mapping_paths", 0))
            elif child.name == "tpw.instantiate":
                stats.pairwise_valid_mapping_paths = int(
                    attrs.get("valid_mapping_paths", 0)
                )
                if "complete_tuple_paths" in attrs:  # single-column search
                    stats.complete_tuple_paths = int(attrs["complete_tuple_paths"])
            elif child.name == "tpw.weave":
                stats.pairwise_tuple_paths = int(
                    attrs.get("pairwise_tuple_paths", 0)
                )
                stats.complete_tuple_paths = int(
                    attrs.get("complete_tuple_paths", 0)
                )
                for level_span in child.children:
                    if level_span.name != "tpw.weave.level":
                        continue
                    level = int(level_span.attributes.get("level", 0))
                    stats.woven_per_level[level] = int(
                        level_span.attributes.get("woven", 0)
                    )
                    stats.kept_per_level[level] = int(
                        level_span.attributes.get("kept", 0)
                    )
        return stats

    @classmethod
    def from_trace(
        cls, roots: "list[Span] | tuple[Span, ...]", search_id: int | None = None
    ) -> "SearchStats":
        """Derive the stats of one search out of a whole trace.

        ``roots`` is a list of span trees, e.g. ``tracer.finished`` or
        the result of :func:`repro.obs.export.parse_jsonl`; nested
        ``tpw.search`` spans (sessions, benches) are found too.  With
        ``search_id`` the matching search is selected; without it the
        trace must contain exactly one search — a trace with several
        raises :class:`ValueError` (naming the available ids) instead
        of silently picking one.
        """
        from repro.obs.explain import find_searches

        searches = find_searches(roots)
        if search_id is not None:
            searches = [
                span
                for span in searches
                if span.attributes.get("search_id") == search_id
            ]
            if not searches:
                raise ValueError(f"no tpw.search span with id {search_id}")
        if not searches:
            raise ValueError("trace contains no tpw.search span")
        if len(searches) > 1:
            ids = [span.attributes.get("search_id") for span in searches]
            raise ValueError(
                f"trace contains {len(searches)} searches (ids {ids}); "
                "pass search_id to pick one"
            )
        return cls.from_span(searches[0])

    def describe(self) -> str:
        """Multi-line summary for logs."""
        lines = [
            f"pairwise mapping paths: {self.pairwise_mapping_paths} "
            f"({self.pairwise_valid_mapping_paths} valid)",
            f"pairwise tuple paths:   {self.pairwise_tuple_paths}",
        ]
        for level, count in sorted(self.kept_per_level.items()):
            generated = self.woven_per_level.get(level, 0)
            lines.append(f"level {level}: kept {count} (woven {generated})")
        lines.append(f"complete tuple paths:   {self.complete_tuple_paths}")
        lines.append(f"valid mappings:         {self.valid_complete_mappings}")
        if self.timings:
            timing = ", ".join(
                f"{phase}={seconds * 1000:.1f}ms"
                for phase, seconds in self.timings.items()
            )
            lines.append(f"timings: {timing}")
        return "\n".join(lines)
