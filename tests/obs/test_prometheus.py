"""Prometheus text exposition: rendering validity and the parser.

The renderer must emit format 0.0.4 the real Prometheus scraper would
accept — mangled names, ``_total`` counters, cumulative ``le`` buckets
ending in ``+Inf``, ``_sum``/``_count`` series, escaped label values —
and :func:`parse_exposition` doubles as the validity oracle: it raises
:class:`ExpositionError` on any histogram whose invariants are broken.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    ExpositionError,
    escape_label_value,
    metric_name,
    parse_exposition,
    render_exposition,
)


class TestNameMangling:
    def test_dots_become_underscores(self):
        assert metric_name("repro.service.requests") == (
            "repro_service_requests"
        )

    def test_counter_suffix(self):
        assert metric_name("repro.tpw.searches", suffix="_total") == (
            "repro_tpw_searches_total"
        )

    def test_invalid_characters_collapse_to_underscores(self):
        # Colons stay (legal in Prometheus names); everything else
        # outside [a-zA-Z0-9_:] folds to '_'.
        assert metric_name("weird-name:with spaces") == (
            "weird_name:with_spaces"
        )


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_labels_round_trip_through_the_parser(self):
        registry = MetricsRegistry()
        nasty = 'GET /x "quoted"\nand\\slashed'
        registry.counter("repro.test.requests", route=nasty).inc(3)
        parsed = parse_exposition(render_exposition(registry))
        (sample,) = parsed["repro_test_requests_total"]
        assert sample["labels"]["route"] == nasty
        assert sample["value"] == 3.0


class TestCounterAndGaugeRendering:
    def test_counter_gets_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("repro.jobs.done").inc(7)
        text = render_exposition(registry)
        assert "# TYPE repro_jobs_done_total counter" in text
        assert "repro_jobs_done_total 7" in text

    def test_gauge_keeps_bare_name(self):
        registry = MetricsRegistry()
        registry.gauge("repro.queue.depth").set(4)
        text = render_exposition(registry)
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 4" in text

    def test_labeled_series_share_one_type_line(self):
        registry = MetricsRegistry()
        registry.counter("repro.requests", route="a").inc()
        registry.counter("repro.requests", route="b").inc(2)
        text = render_exposition(registry)
        assert text.count("# TYPE repro_requests_total counter") == 1
        parsed = parse_exposition(text)
        values = {
            sample["labels"]["route"]: sample["value"]
            for sample in parsed["repro_requests_total"]
        }
        assert values == {"a": 1.0, "b": 2.0}


class TestHistogramRendering:
    def test_buckets_are_cumulative_and_end_in_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro.req.seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_exposition(registry)
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_req_seconds_bucket")
        ]
        assert [line.rsplit(" ", 1)[1] for line in lines] == ["1", "2", "3"]
        assert 'le="+Inf"' in lines[-1]
        assert "repro_req_seconds_sum 5.55" in text
        assert "repro_req_seconds_count 3" in text

    def test_parser_verifies_histogram_invariants(self):
        registry = MetricsRegistry()
        registry.histogram("repro.req.seconds").observe(0.2)
        parsed = parse_exposition(render_exposition(registry))
        assert parsed["repro_req_seconds_count"][0]["value"] == 1.0
        assert parsed["repro_req_seconds_sum"][0]["value"] == (
            pytest.approx(0.2)
        )

    def test_per_label_histograms_keep_invariants_separately(self):
        registry = MetricsRegistry()
        registry.histogram("repro.req.seconds", route="a").observe(0.1)
        registry.histogram("repro.req.seconds", route="b").observe(9.9)
        text = render_exposition(registry)
        parsed = parse_exposition(text)
        routes = {
            sample["labels"]["route"]
            for sample in parsed["repro_req_seconds_count"]
        }
        assert routes == {"a", "b"}


class TestValueFormatting:
    def test_non_finite_values_render_prometheus_style(self):
        registry = MetricsRegistry()
        registry.gauge("repro.weird").set(math.inf)
        registry.gauge("repro.weirder").set(math.nan)
        text = render_exposition(registry)
        assert "repro_weird +Inf" in text
        assert "repro_weirder NaN" in text
        parsed = parse_exposition(text)
        assert parsed["repro_weird"][0]["value"] == math.inf
        assert math.isnan(parsed["repro_weirder"][0]["value"])


class TestParserRejectsInvalidExposition:
    def test_non_monotone_buckets_raise(self):
        text = (
            "# TYPE x histogram\n"
            'x_bucket{le="0.1"} 5\n'
            'x_bucket{le="1.0"} 3\n'
            'x_bucket{le="+Inf"} 5\n'
            "x_sum 1\n"
            "x_count 5\n"
        )
        with pytest.raises(ExpositionError, match="monoton"):
            parse_exposition(text)

    def test_missing_inf_bucket_raises(self):
        text = (
            "# TYPE x histogram\n"
            'x_bucket{le="0.1"} 1\n'
            "x_sum 0.05\n"
            "x_count 1\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            parse_exposition(text)

    def test_missing_sum_or_count_raises(self):
        text = (
            "# TYPE x histogram\n"
            'x_bucket{le="0.1"} 1\n'
            'x_bucket{le="+Inf"} 1\n'
            "x_sum 0.05\n"
        )
        with pytest.raises(ExpositionError, match="count"):
            parse_exposition(text)

    def test_garbage_line_raises(self):
        with pytest.raises(ExpositionError):
            parse_exposition("this is not prometheus\n")

    def test_empty_exposition_is_fine(self):
        assert parse_exposition("") == {}
        assert parse_exposition("# just a comment\n") == {}
