"""mweaver-repro: sample-driven schema mapping.

A from-scratch reproduction of *Sample-Driven Schema Mapping* (Qian,
Cafarella, Jagadish — SIGMOD 2012), the MWeaver system: the user types
sample instances of the desired target table and the system derives the
project-join schema mapping that produces them, pruning candidates
interactively as more samples arrive.

Quickstart::

    from repro import TPWEngine, MappingSession
    from repro.datasets import build_running_example

    db = build_running_example()
    result = TPWEngine(db).search(("Avatar", "James Cameron"))
    for candidate in result.candidates:
        print(candidate.describe())

    session = MappingSession(db, ["Name", "Director"])
    session.input(0, 0, "Avatar")
    session.input(0, 1, "James Cameron")   # first row complete -> search
    session.input(1, 0, "Big Fish")
    session.input(1, 1, "Tim Burton")      # pruning
    print(session.best_mapping().to_sql(db.schema))

Package map::

    repro.core        TPW search, pruning, interactive session
    repro.relational  in-memory relational engine (schemas, FKs, queries)
    repro.text        full-text indexes and noisy containment
    repro.graphs      schema graph and bounded walks
    repro.datasets    synthetic Yahoo-Movies / IMDb generators, workloads
    repro.study       simulated user study (Figure 10)
    repro.bench       benchmark harness helpers
"""

from repro.config import NaiveConfig, RankingWeights, TPWConfig
from repro.core import (
    MappingPath,
    MappingProject,
    MappingSession,
    NaiveEngine,
    RankedMapping,
    SearchResult,
    SessionStatus,
    Spreadsheet,
    TPWEngine,
    TuplePath,
    explain_mapping,
    materialize_mapping,
)
from repro.exceptions import (
    DatasetError,
    IntegrityError,
    QueryError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
    SessionError,
)
from repro.relational import (
    Attribute,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    RelationSchema,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "TPWConfig",
    "NaiveConfig",
    "RankingWeights",
    # engines and session
    "TPWEngine",
    "NaiveEngine",
    "MappingSession",
    "MappingProject",
    "SessionStatus",
    "SearchResult",
    "materialize_mapping",
    "explain_mapping",
    "RankedMapping",
    "Spreadsheet",
    "MappingPath",
    "TuplePath",
    # relational building blocks
    "Database",
    "DatabaseSchema",
    "RelationSchema",
    "Attribute",
    "ForeignKey",
    "DataType",
    # exceptions
    "ReproError",
    "SchemaError",
    "IntegrityError",
    "QueryError",
    "SearchBudgetExceeded",
    "SessionError",
    "DatasetError",
]
