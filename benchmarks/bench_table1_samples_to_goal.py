"""Table 1 — average number of samples to generate the goal mapping.

Paper's numbers (Yahoo Movies, 100 runs per cell)::

    m              3      4      5      6
    Task Set 1   7.24   9.35  10.80  14.98
    Task Set 2   5.08   8.50  11.55  16.18
    Task Set 3   6.97   9.27  11.71  13.67

Expected shape on our synthetic source: samples grow with the target
size m and stay in the one-to-three-rows regime (roughly m to 3m).
"""

from repro.bench.harness import run_feeder_aggregate
from repro.bench.reporting import format_table, write_result
from repro.datasets.simulator import SampleFeeder


def test_table1_samples_to_goal(benchmark, yahoo_db, task_sets, n_runs):
    rows = []
    aggregates = {}
    for task_set in task_sets:
        cells = []
        for task in task_set.tasks:
            aggregate = run_feeder_aggregate(
                yahoo_db, task, n_runs=n_runs, seed=task_set.set_id
            )
            aggregates[task.name] = aggregate
            cells.append(aggregate.samples_to_goal)
        rows.append([f"Task Set {task_set.set_id}", *cells])

    table = format_table(
        ["", "m=3", "m=4", "m=5", "m=6"],
        rows,
        title=(
            "Table 1: average number of samples to generate the goal "
            f"mapping ({n_runs} runs per cell)"
        ),
    )
    write_result("table1_samples_to_goal.txt", table)

    # Shape assertions (paper: ~2 rows of samples; grows with m).
    for task_set in task_sets:
        first = aggregates[task_set.tasks[0].name].samples_to_goal
        last = aggregates[task_set.tasks[-1].name].samples_to_goal
        assert first <= last, "samples should grow with target size"
        for task in task_set.tasks:
            aggregate = aggregates[task.name]
            assert aggregate.convergence_rate >= 0.8
            assert task.target_size <= aggregate.samples_to_goal <= 6 * task.target_size

    # Headline micro-benchmark: one full feeder run on task set 1, m=3.
    task = task_sets[0].tasks[0]
    benchmark(lambda: SampleFeeder(yahoo_db, task, seed=1).run())
