"""Concurrency semantics: session isolation and TTL over the API.

The acceptance bar for the service: N clients running the full
running-example flow concurrently must each converge to exactly the
mapping a serial session finds — shared databases and the cross-session
location cache must never leak state between sessions.
"""

import threading
import time

from tests.service.conftest import run_flow


class TestIsolation:
    def test_eight_concurrent_flows_match_the_serial_result(self, make_app):
        app = make_app(workers=8, queue_size=64, max_sessions=32)
        serial = run_flow(app)
        assert serial["status"] == "converged"
        serial_sql = serial["candidates"][0]["sql"]

        results: list[dict] = []
        errors: list[BaseException] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def flow() -> None:
            try:
                barrier.wait(timeout=10.0)
                body = run_flow(app)
                with lock:
                    results.append(body)
            except BaseException as error:  # noqa: BLE001 - collected
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=flow, name=f"client-{i}")
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        assert errors == []
        assert len(results) == 8
        for body in results:
            assert body["status"] == "converged"
            assert body["n_candidates"] == 1
            assert body["candidates"][0]["sql"] == serial_sql

    def test_sessions_do_not_share_spreadsheets(self, app):
        _, first, _ = app.handle("POST", "/sessions", {}, {})
        _, second, _ = app.handle("POST", "/sessions", {}, {})
        app.handle(
            "POST", f"/sessions/{first['session_id']}/cells", {},
            {"row": 0, "column": 0, "value": "Avatar"},
        )
        _, state, _ = app.handle(
            "GET", f"/sessions/{second['session_id']}", {}, None
        )
        assert state["samples"] == 0
        assert state["status"] == "awaiting_first_row"


class TestTTLOverTheAPI:
    def test_idle_session_becomes_404(self, make_app):
        app = make_app(session_ttl_s=0.3, request_timeout_s=0.2)
        _, created, _ = app.handle("POST", "/sessions", {}, {})
        session_id = created["session_id"]
        assert app.handle("GET", f"/sessions/{session_id}", {}, None)[0] == 200
        time.sleep(0.4)
        status, body, _ = app.handle(
            "GET", f"/sessions/{session_id}", {}, None
        )
        assert status == 404
        assert session_id in body["error"]
