"""Chaos tests: injected faults vs. the retry/breaker/typed-error layer.

Each test arms a named fault point and asserts the surrounding
machinery does exactly what the docs claim — transient faults are
absorbed by retries, persistent ones surface as typed errors, repeated
build failures trip the registry breaker, and a flaky index degrades
results instead of crashing the probe.
"""

import sqlite3

import pytest

from repro.exceptions import BackendError, CircuitOpenError
from repro.relational.sqlite_backend import (
    BUSY_TIMEOUT_MS,
    connect,
    to_sqlite,
)
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFault
from repro.resilience.retry import RetryPolicy
from repro.service.registry import DatasetRegistry
from repro.text.errors import ExactModel
from repro.text.inverted_index import ColumnIndex


def _locked():
    return sqlite3.OperationalError("database is locked")


class TestSqliteConnect:
    def test_busy_timeout_is_applied(self):
        connection = connect()
        try:
            row = connection.execute("PRAGMA busy_timeout").fetchone()
            assert row[0] == BUSY_TIMEOUT_MS
        finally:
            connection.close()

    def test_transient_connect_fault_is_retried(self):
        injector = FaultInjector([
            FaultSpec("sqlite.connect", times=2, error=_locked),
        ])
        with injector:
            connection = connect()
        connection.close()
        assert injector.fired["sqlite.connect"] == 2

    def test_persistent_connect_fault_becomes_backend_error(self):
        with FaultInjector([FaultSpec("sqlite.connect", error=_locked)]):
            with pytest.raises(BackendError) as info:
                connect()
        assert info.value.operation == "connect"
        assert isinstance(info.value.cause, sqlite3.OperationalError)

    def test_non_operational_faults_are_not_swallowed(self):
        # Only sqlite's own transient error class is retried/translated.
        with FaultInjector([FaultSpec("sqlite.connect")]):
            with pytest.raises(InjectedFault):
                connect()


class TestSqliteLoad:
    def test_transient_execute_fault_is_absorbed(self, running_db):
        injector = FaultInjector([
            FaultSpec("sqlite.execute", times=2, error=_locked),
        ])
        with injector:
            connection = to_sqlite(running_db)
        try:
            count = connection.execute(
                "SELECT COUNT(*) FROM movie"
            ).fetchone()[0]
            assert count == len(running_db.table("movie"))
        finally:
            connection.close()

    def test_persistent_execute_fault_becomes_backend_error(
        self, running_db
    ):
        with FaultInjector([FaultSpec("sqlite.execute", error=_locked)]):
            with pytest.raises(BackendError) as info:
                to_sqlite(running_db)
        assert info.value.operation == "execute"

    def test_retries_reload_from_scratch(self, running_db):
        # The first attempt dies after creating some tables; the retry
        # must not trip over "table already exists".
        injector = FaultInjector([
            FaultSpec("sqlite.execute", times=1, error=_locked),
        ])
        with injector:
            connection = to_sqlite(running_db)
        try:
            for relation in running_db.schema:
                rows = connection.execute(
                    f'SELECT COUNT(*) FROM "{relation.name}"'
                ).fetchone()[0]
                assert rows == len(running_db.table(relation.name))
        finally:
            connection.close()


class TestRegistryBreaker:
    def _registry(self, builder, **kwargs):
        settings = dict(
            retry_policy=RetryPolicy(
                max_attempts=1, base_delay_s=0.0, jitter=0.0
            ),
            breaker_threshold=2,
            breaker_reset_s=60.0,
        )
        settings.update(kwargs)
        return DatasetRegistry(builder=builder, **settings)

    def test_transient_build_fault_is_retried(self, running_db):
        registry = DatasetRegistry(
            builder=lambda _n, _s: running_db,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, jitter=0.0
            ),
        )
        injector = FaultInjector([FaultSpec("registry.build", times=2)])
        with injector:
            assert registry.get("running") is running_db
        assert injector.fired["registry.build"] == 2

    def test_breaker_opens_and_fails_fast(self, running_db):
        registry = self._registry(lambda _n, _s: running_db)
        with FaultInjector([FaultSpec("registry.build")]):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    registry.get("running")
        # Faults removed — but the breaker is open, so no build runs.
        with pytest.raises(CircuitOpenError):
            registry.get("running")
        snapshots = registry.breaker_snapshots()
        assert snapshots[0]["state"] == "open"
        assert snapshots[0]["name"] == "registry.build:running"

    def test_breakers_are_per_dataset(self, running_db):
        registry = self._registry(lambda _n, _s: running_db)
        with FaultInjector([FaultSpec("registry.build")]):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    registry.get("yahoo")
        # "yahoo" is open; "running" still builds fine.
        assert registry.get("running") is running_db
        with pytest.raises(CircuitOpenError):
            registry.get("yahoo")


class TestIndexPartialResults:
    def test_partial_fault_truncates_probe_results(self):
        index = ColumnIndex(["Avatar", "Avatar", "Avatar", "Avatar"])
        model = ExactModel()
        assert index.search(model, "Avatar") == [0, 1, 2, 3]
        with FaultInjector([
            FaultSpec("index.search", mode="partial", keep_fraction=0.5),
        ]):
            assert index.search(model, "Avatar") == [0, 1]

    def test_index_error_fault_raises_through(self):
        index = ColumnIndex(["Avatar"])
        with FaultInjector([FaultSpec("index.search")]):
            with pytest.raises(InjectedFault):
                index.search(ExactModel(), "Avatar")
