"""Synthetic dataset generators.

The paper evaluates on the Yahoo Movies database (500 MB, 43 relations,
131 attributes) and an IMDb dump (2 GB, 19 relations, 57 attributes),
neither of which is redistributable.  These generators produce
deterministic movie-domain databases with the same schema shapes —
including the join ambiguities (direct vs write vs produce links, title
echoes inside loglines) that make the sample search non-trivial — at
whatever scale a laptop benchmark needs.
"""

from repro.datasets.corpus import Corpus
from repro.datasets.yahoo import YAHOO_RELATION_COUNT, build_yahoo_movies, yahoo_schema
from repro.datasets.imdb import IMDB_RELATION_COUNT, build_imdb, imdb_schema
from repro.datasets.running_example import build_running_example
from repro.datasets.workload import MappingTask, TaskSet, build_task_sets
from repro.datasets.simulator import FeedResult, SampleFeeder

__all__ = [
    "Corpus",
    "yahoo_schema",
    "build_yahoo_movies",
    "YAHOO_RELATION_COUNT",
    "imdb_schema",
    "build_imdb",
    "IMDB_RELATION_COUNT",
    "build_running_example",
    "MappingTask",
    "TaskSet",
    "build_task_sets",
    "SampleFeeder",
    "FeedResult",
]
