"""Process-level isolation: supervised subprocess workers with hard kills.

The cooperative :class:`~repro.resilience.budget.Budget` can only stop
a search at points the search chooses to check — a query stuck inside
sqlite's C core, an injected ``time.sleep``, or a pathological weave
that balloons resident memory sails right past it.  This module is the
non-cooperative backstop: each job runs in a supervised **worker
process** that the parent can always ``SIGKILL``.

Guarantees (the containment contract):

* **Hard wall-clock kill.** A job that has not replied within its
  ``kill_after_s`` (the cooperative deadline × a grace factor) gets its
  worker ``SIGKILL``ed — no cooperation required.
* **Memory ceilings.** Workers apply ``resource.setrlimit(RLIMIT_AS)``
  at startup (allocations beyond it raise ``MemoryError`` inside the
  worker, answered as an OOM), and the parent watches reported RSS,
  recycling workers that grow past the watchdog limits.
* **Recycling.** Workers retire after ``max_requests`` jobs or
  ``max_growth_mb`` of RSS growth — leaks die young.
* **Supervision.** Every dead worker (killed, crashed, recycled) is
  restarted by its slot runner with jittered exponential backoff; the
  victim job is re-queued **once**, then fails fast with
  :class:`~repro.exceptions.ServiceUnavailableError` (HTTP 503).

The pool is transport-agnostic: jobs are ``(task, payload)`` pairs
where ``task`` names a function in the bootstrap's task module (plus
the built-in ``diag.*`` tasks used by tests and ops smoke checks) and
``payload``/results are plain picklable dicts.  The mapping service's
tasks live in :mod:`repro.service.proctasks`.

Workers are started with the ``spawn`` method: a fresh interpreter,
no inherited locks mid-acquire, no shared mutable state — worker death
cannot corrupt the parent.  The price is startup cost (an import plus
the task module's ``bootstrap_worker``), which is exactly what the
recycling budget amortizes.

Fault injection crosses the process boundary per job: ``submit``
snapshots the active :class:`~repro.resilience.faults.FaultInjector`'s
picklable specs and the worker re-installs them around the task body,
so chaos tests drive child processes the same way they drive threads.

Metrics (all under ``repro.isolation.*``): ``kills``, ``oom_kills``,
``recycles`` (labelled by reason), ``restarts``, ``requeued``,
``expired``, ``queue.rejected``, and the ``workers.alive`` gauge.
Worker lifecycle is traced as ``isolation.worker.spawn`` /
``isolation.worker.exit`` spans.
"""

from __future__ import annotations

import importlib
import itertools
import os
import queue
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import multiprocessing
import multiprocessing.connection

from repro.exceptions import (
    DeadlineExceeded,
    ReproError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionError,
)
from repro.obs import get_logger, get_metrics, get_tracer, tracing_enabled
from repro.obs.export import records_to_spans, span_records
from repro.obs.tracer import Tracer, disable_tracing, set_tracer
from repro.resilience.faults import FaultSpec, active_injector

_log = get_logger(__name__)

#: Parent waits this long for a fresh worker's ready handshake.
SPAWN_TIMEOUT_S = 60.0

#: Poll granularity while waiting for a worker reply (seconds).
_POLL_STEP_S = 0.02

#: Restart backoff: ``min(cap, base * 2**failures)`` with ±50% jitter.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0


def backoff_delay(failures: int, rng: random.Random) -> float:
    """The jittered respawn delay after ``failures`` consecutive failures.

    Exponential (``base * 2**failures``) capped at :data:`_BACKOFF_CAP_S`,
    then spread uniformly over [0.5x, 1.5x] so a fleet of restarting
    slots does not re-collide.  The RNG is a parameter so chaos tests
    can seed it and assert exact schedules instead of sleeping through
    random backoff.
    """
    delay = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** max(0, failures)))
    return delay * (0.5 + rng.random())


def _rss_bytes() -> int:
    """Peak resident set size of the calling process, in bytes."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return peak * 1024 if sys.platform != "darwin" else peak


@dataclass(frozen=True)
class IsolationLimits:
    """Per-worker resource ceilings; ``0`` disables each knob.

    ``address_space_mb`` is enforced *inside* the worker via
    ``setrlimit(RLIMIT_AS)`` — allocations beyond it fail with
    ``MemoryError`` (answered as an OOM and the worker is recycled).
    ``rss_limit_mb`` and ``max_growth_mb`` are parent-side watchdogs on
    the RSS each reply reports; ``max_requests`` retires workers by age.
    """

    address_space_mb: int = 0
    rss_limit_mb: int = 0
    max_requests: int = 0
    max_growth_mb: int = 0

    def validate(self) -> "IsolationLimits":
        """Raise ``ValueError`` on a negative knob; return self."""
        for name in (
            "address_space_mb", "rss_limit_mb", "max_requests",
            "max_growth_mb",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 disables it)")
        return self


@dataclass(frozen=True)
class WorkerBootstrap:
    """Everything a spawned worker needs to become useful (picklable).

    ``task_module`` names a module exposing ``TASKS`` (a ``name ->
    callable(payload) -> result`` dict) and optionally
    ``bootstrap_worker(context)`` which runs once at worker startup
    (the mapping service preloads its datasets there).  ``context`` is
    an arbitrary picklable dict handed to ``bootstrap_worker``.
    """

    task_module: str | None = None
    context: dict[str, Any] = field(default_factory=dict)
    limits: IsolationLimits = field(default_factory=IsolationLimits)


# ----------------------------------------------------------------------
# Built-in diagnostic tasks (tests, ops smoke checks)
# ----------------------------------------------------------------------

_HELD_ALLOCATIONS: list[bytearray] = []


def _diag_echo(payload: dict[str, Any]) -> dict[str, Any]:
    return {"echo": payload.get("value"), "pid": os.getpid()}


def _diag_sleep(payload: dict[str, Any]) -> dict[str, Any]:
    seconds = float(payload.get("seconds", 0.0))
    time.sleep(seconds)
    return {"slept_s": seconds, "pid": os.getpid()}


def _diag_alloc(payload: dict[str, Any]) -> dict[str, Any]:
    """Allocate ``mb`` megabytes; ``hold=True`` keeps them resident."""
    size = int(payload.get("mb", 1)) * 1024 * 1024
    blob = bytearray(size)
    blob[::4096] = b"x" * len(blob[::4096])  # fault the pages in
    if payload.get("hold"):
        _HELD_ALLOCATIONS.append(blob)
    return {"allocated_bytes": size, "pid": os.getpid()}


def _diag_boom(payload: dict[str, Any]) -> dict[str, Any]:
    raise RuntimeError(str(payload.get("message", "boom")))


def _diag_fault(payload: dict[str, Any]) -> dict[str, Any]:
    """Visit a fault point — proves injected specs reach the worker."""
    from repro.resilience.faults import fault_point

    fault_point(str(payload.get("point", "workers.job")))
    return {"unfaulted": True, "pid": os.getpid()}


DIAG_TASKS: dict[str, Any] = {
    "diag.echo": _diag_echo,
    "diag.sleep": _diag_sleep,
    "diag.alloc": _diag_alloc,
    "diag.boom": _diag_boom,
    "diag.fault": _diag_fault,
}


# ----------------------------------------------------------------------
# Fault-spec transport
# ----------------------------------------------------------------------

def snapshot_fault_specs() -> list[dict[str, Any]] | None:
    """Picklable snapshot of the active injector's specs (or ``None``).

    Custom ``error`` factories are dropped (callables may not pickle);
    every other field travels, so latency / partial / default-error
    chaos reaches worker processes.
    """
    injector = active_injector()
    if injector is None:
        return None
    specs = [
        {
            "point": spec.point,
            "mode": spec.mode,
            "probability": spec.probability,
            "times": spec.times,
            "latency_s": spec.latency_s,
            "keep_fraction": spec.keep_fraction,
        }
        for spec in injector.specs
        if spec.error is None
    ]
    return specs or None


def _rebuild_fault_specs(specs: list[dict[str, Any]]) -> list[FaultSpec]:
    return [FaultSpec(**spec) for spec in specs]


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------

def worker_main(
    conn: multiprocessing.connection.Connection,
    bootstrap: WorkerBootstrap,
) -> None:
    """Entry point of one worker process (module-level for ``spawn``).

    Protocol, parent → worker: ``None`` (graceful retirement) or a job
    dict ``{"task", "payload", "faults", "seed", "trace"}``.  Worker →
    parent: one ``{"op": "ready", ...}`` handshake, then exactly one
    ``{"op": "result", ...}`` per job carrying ``ok``, the result or
    error description, and the worker's current ``rss_bytes``.

    When the job asks for a trace (``trace`` truthy — the parent's
    request thread had tracing on at submit), the worker runs the task
    under a fresh :class:`~repro.obs.tracer.Tracer` wrapped in an
    ``isolation.task`` span, and the reply carries ``spans``: the
    finished span trees flattened to :func:`~repro.obs.export.
    span_records` dicts (plain picklables).  The parent stitches them
    back under the request span in :meth:`ProcJob.wait` — including on
    error replies, where the partial trace up to the failure travels
    too.
    """
    # Hard memory ceiling first: even bootstrap leaks are contained.
    if bootstrap.limits.address_space_mb:
        import resource

        ceiling = bootstrap.limits.address_space_mb * 1024 * 1024
        try:
            resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))
        except (ValueError, OSError):  # pragma: no cover - platform quirk
            pass
    # The parent enforces deadlines with SIGKILL; restore default term
    # handling so an orphaned worker dies cleanly with its group.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    tasks: dict[str, Any] = dict(DIAG_TASKS)
    try:
        if bootstrap.task_module:
            module = importlib.import_module(bootstrap.task_module)
            tasks.update(getattr(module, "TASKS", {}))
            bootstrap_fn = getattr(module, "bootstrap_worker", None)
            if bootstrap_fn is not None:
                bootstrap_fn(bootstrap.context)
    except Exception as error:  # noqa: BLE001 - reported, then exit
        try:
            conn.send({"op": "ready", "ok": False,
                       "error": f"{type(error).__name__}: {error}"})
        except (BrokenPipeError, OSError):
            pass
        return

    conn.send({"op": "ready", "ok": True, "pid": os.getpid(),
               "rss_bytes": _rss_bytes()})

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        reply: dict[str, Any] = {"op": "result", "ok": True}
        fatal = False
        tracer: Tracer | None = None
        if message.get("trace"):
            tracer = set_tracer(Tracer())
        try:
            task = tasks[message["task"]]
            faults = message.get("faults")
            with get_tracer().span(
                "isolation.task", task=message["task"], pid=os.getpid(),
            ):
                if faults:
                    from repro.resilience.faults import FaultInjector

                    with FaultInjector(
                        _rebuild_fault_specs(faults),
                        seed=int(message.get("seed", 0)),
                    ):
                        reply["result"] = task(message.get("payload") or {})
                else:
                    reply["result"] = task(message.get("payload") or {})
        except MemoryError:
            # The rlimit tripped: answer, then retire — the heap is in
            # an unknown state and the parent will restart us anyway.
            reply = {"op": "result", "ok": False, "kind": "oom",
                     "category": "oom", "error_type": "MemoryError",
                     "message": "worker memory ceiling exceeded"}
            fatal = True
        except BaseException as error:  # noqa: BLE001 - serialized verbatim
            if isinstance(error, SessionError):
                category = "session"
            elif isinstance(error, ReproError):
                category = "repro"
            else:
                category = "other"
            reply = {"op": "result", "ok": False, "kind": "error",
                     "category": category,
                     "error_type": type(error).__name__,
                     "message": str(error)}
        finally:
            if tracer is not None:
                # Back to the no-op handle between jobs, and ship the
                # finished trees home as plain record dicts.
                disable_tracing()
                reply["spans"] = list(span_records(tracer.finished))
        reply["rss_bytes"] = _rss_bytes()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        if fatal:
            return


def _decode_error(reply: dict[str, Any]) -> Exception:
    """Rebuild a typed exception from a worker's error reply."""
    message = f"{reply.get('error_type', 'Error')}: {reply.get('message', '')}"
    category = reply.get("category")
    if category == "session":
        return SessionError(reply.get("message", message))
    if category == "repro":
        return ReproError(reply.get("message", message))
    return RuntimeError(message)


# ----------------------------------------------------------------------
# Parent-side job bookkeeping
# ----------------------------------------------------------------------

class ProcJob:
    """One queued unit of process-pool work and its synchronization."""

    __slots__ = (
        "job_id", "task", "payload", "timeout_s", "kill_after_s",
        "deadline", "faults", "seed", "trace", "remote_spans", "done",
        "result", "error", "attempts", "_lock", "_cancelled", "_started",
    )

    def __init__(
        self,
        job_id: int,
        task: str,
        payload: dict[str, Any],
        *,
        timeout_s: float,
        kill_after_s: float,
        faults: list[dict[str, Any]] | None,
        seed: int,
        trace: bool = False,
    ) -> None:
        self.job_id = job_id
        self.task = task
        self.payload = payload
        self.timeout_s = timeout_s
        self.kill_after_s = kill_after_s
        self.deadline = time.monotonic() + timeout_s
        self.faults = faults
        self.seed = seed
        self.trace = trace
        self.remote_spans: list[dict[str, Any]] = []
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.attempts = 0
        self._lock = threading.Lock()
        self._cancelled = False
        self._started = False

    def cancel(self) -> bool:
        """Mark cancelled; ``True`` when the job had not started yet."""
        with self._lock:
            if self._started:
                return False
            self._cancelled = True
            return True

    def try_start(self) -> bool:
        """Slot-runner claim: ``False`` when cancelled or expired."""
        with self._lock:
            if self._cancelled:
                return False
            if time.monotonic() > self.deadline:
                self._cancelled = True
                return False
            self._started = True
            return True

    def reset_for_retry(self) -> bool:
        """Allow one more :meth:`try_start` after a worker death."""
        with self._lock:
            if self._cancelled:
                return False
            self._started = False
            return True

    @property
    def cancelled(self) -> bool:
        """Whether the job was cancelled before it could (re)start."""
        with self._lock:
            return self._cancelled

    def adopt_remote_spans(self) -> None:
        """Stitch worker-side span trees under the caller's open span.

        The records travelled back in the result reply; grafting them
        into the *calling* thread's tracer position is what makes a
        process-mode trace read identically to thread mode.  Cleared
        after one graft so repeated waits cannot duplicate subtrees; a
        malformed remote trace is dropped (logged), never raised — the
        result path outranks the trace.
        """
        records, self.remote_spans = self.remote_spans, []
        if not records:
            return
        tracer = get_tracer()
        if not tracer.enabled:
            return
        try:
            tracer.graft(records_to_spans(records))
        except (ValueError, KeyError):
            _log.warning(
                "job %d: dropping malformed remote trace (%d records)",
                self.job_id, len(records),
            )

    def wait(self) -> Any:
        """Block for the result; raise the error or ``DeadlineExceeded``.

        Worker-side spans shipped with the reply are grafted into the
        waiting thread's tracer first, so the stitched trace is in
        place whether the job succeeded or raises below.
        """
        remaining = self.deadline - time.monotonic()
        if not self.done.wait(timeout=max(0.0, remaining)):
            self.cancel()
            if not self.done.is_set():
                self.adopt_remote_spans()
                raise DeadlineExceeded("isolated work", self.timeout_s)
        self.adopt_remote_spans()
        if self.error is not None:
            raise self.error
        if self.cancelled:
            raise DeadlineExceeded("isolated work", self.timeout_s)
        return self.result


class _WorkerProcess:
    """Parent-side record of one live worker process."""

    __slots__ = (
        "slot", "process", "conn", "pid", "served", "baseline_rss",
        "rss_bytes", "started_at",
    )

    def __init__(self, slot: int, process, conn, pid: int, rss: int) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.pid = pid
        self.served = 0
        self.baseline_rss = rss
        self.rss_bytes = rss
        self.started_at = time.time()


class ProcessWorkerPool:
    """A fixed set of supervised worker processes behind one queue.

    One *slot runner* thread per worker slot owns the lifecycle of the
    successive processes filling that slot: spawn (with ready
    handshake), serve jobs, kill/recycle, restart with jittered
    backoff.  The request thread only ever touches the bounded queue
    and the job's event — worker death never propagates past a 503.
    """

    def __init__(
        self,
        *,
        procs: int,
        queue_size: int,
        bootstrap: WorkerBootstrap | None = None,
        kill_grace: float = 2.0,
        retry_after_s: float = 1.0,
        spawn_timeout_s: float = SPAWN_TIMEOUT_S,
        backoff_rng: random.Random | None = None,
        backoff_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if procs <= 0:
            raise ValueError("procs must be positive")
        if kill_grace < 1.0:
            raise ValueError("kill_grace must be >= 1.0")
        self.bootstrap = bootstrap or WorkerBootstrap()
        self.bootstrap.limits.validate()
        self.kill_grace = kill_grace
        self.retry_after_s = retry_after_s
        self.spawn_timeout_s = spawn_timeout_s
        # Injectable so chaos tests can seed the jitter and fake the
        # sleep — a respawn schedule becomes a deterministic assertion.
        self._backoff_rng = backoff_rng or random.Random()
        self._backoff_sleep = backoff_sleep
        self._ctx = multiprocessing.get_context("spawn")
        self._queue: queue.Queue[ProcJob] = queue.Queue(maxsize=queue_size)
        self._ids = itertools.count(1)
        self._seeds = itertools.count(1)
        self._closed = False
        self._draining = False
        self._lock = threading.Lock()
        self._workers: dict[int, _WorkerProcess | None] = {}
        self._states: dict[int, str] = {}
        self._restarts: dict[int, int] = {}
        self._outstanding = 0
        self._idle = threading.Condition(self._lock)
        # Lifetime counters (under self._lock), mirrored to metrics.
        self.kills = 0
        self.oom_kills = 0
        self.recycles = 0
        self.requeued = 0
        self.restarts = 0
        self._ready = threading.Event()
        self._threads = []
        for slot in range(procs):
            self._workers[slot] = None
            self._states[slot] = "starting"
            self._restarts[slot] = 0
            thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"mweaver-procslot-{slot}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        task: str,
        payload: dict[str, Any],
        *,
        timeout_s: float,
        kill_after_s: float | None = None,
        faults: list[dict[str, Any]] | None = None,
    ) -> ProcJob:
        """Enqueue one job; 429 semantics when the queue is full."""
        if self._closed or self._draining:
            raise ServiceUnavailableError(
                "process pool is shutting down",
                retry_after_s=self.retry_after_s, reason="drain",
            )
        job = ProcJob(
            next(self._ids),
            task,
            payload,
            timeout_s=timeout_s,
            kill_after_s=(
                kill_after_s if kill_after_s is not None
                else timeout_s * self.kill_grace
            ),
            faults=faults if faults is not None else snapshot_fault_specs(),
            seed=next(self._seeds),
            # Snapshot on the request thread: this is where the parent
            # span is open, so it decides whether the worker traces.
            trace=tracing_enabled(),
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            get_metrics().counter("repro.isolation.queue.rejected").inc()
            raise ServiceOverloadedError(
                "isolation queue full", retry_after_s=self.retry_after_s
            ) from None
        with self._lock:
            self._outstanding += 1
        get_metrics().gauge("repro.isolation.queue.depth").set(
            self._queue.qsize()
        )
        return job

    def run(
        self,
        task: str,
        payload: dict[str, Any],
        *,
        timeout_s: float,
        kill_after_s: float | None = None,
    ) -> Any:
        """Submit and wait — the synchronous request-thread entry point."""
        return self.submit(
            task, payload, timeout_s=timeout_s, kill_after_s=kill_after_s
        ).wait()

    def qsize(self) -> int:
        """Jobs waiting in the queue (admission-control input)."""
        return self._queue.qsize()

    # -- slot runner ---------------------------------------------------

    def _slot_loop(self, slot: int) -> None:
        failures = 0
        while not self._closed:
            try:
                worker = self._spawn(slot)
            except Exception as error:  # noqa: BLE001 - spawn is retried
                failures += 1
                self._set_state(slot, "backoff")
                _log.warning("worker slot %d spawn failed: %s", slot, error)
                self._sleep_backoff(failures)
                continue
            failures = 0
            self._ready.set()
            reason = self._serve_with(slot, worker)
            self._retire(slot, worker, reason)
            if reason == "closed" or self._closed:
                return
            with self._lock:
                self.restarts += 1
                self._restarts[slot] += 1
            get_metrics().counter(
                "repro.isolation.restarts", reason=reason
            ).inc()
            if reason in ("crash", "oom"):
                failures += 1
            self._set_state(slot, "backoff")
            self._sleep_backoff(failures)
        self._set_state(slot, "closed")

    def _sleep_backoff(self, failures: int) -> None:
        self._backoff_sleep(backoff_delay(failures, self._backoff_rng))

    def _spawn(self, slot: int) -> _WorkerProcess:
        with get_tracer().span("isolation.worker.spawn", slot=slot) as span:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, self.bootstrap),
                name=f"mweaver-procworker-{slot}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            if not parent_conn.poll(self.spawn_timeout_s):
                process.kill()
                process.join(timeout=5.0)
                parent_conn.close()
                raise TimeoutError(
                    f"worker slot {slot} missed the ready handshake "
                    f"({self.spawn_timeout_s:g}s)"
                )
            ready = parent_conn.recv()
            if not ready.get("ok"):
                process.join(timeout=5.0)
                parent_conn.close()
                raise RuntimeError(
                    f"worker slot {slot} failed to bootstrap: "
                    f"{ready.get('error', 'unknown error')}"
                )
            worker = _WorkerProcess(
                slot, process, parent_conn,
                int(ready["pid"]), int(ready.get("rss_bytes", 0)),
            )
            span.set("pid", worker.pid)
        with self._lock:
            self._workers[slot] = worker
            self._states[slot] = "idle"
            alive = sum(1 for w in self._workers.values() if w is not None)
        get_metrics().gauge("repro.isolation.workers.alive").set(alive)
        _log.info("worker slot %d up (pid %d)", slot, worker.pid)
        return worker

    def _serve_with(self, slot: int, worker: _WorkerProcess) -> str:
        """Run jobs on ``worker`` until it dies/retires; returns why."""
        limits = self.bootstrap.limits
        while not self._closed:
            if self._draining and self._queue.empty():
                return "closed"
            try:
                job = self._queue.get(timeout=0.25)
            except queue.Empty:
                if not worker.process.is_alive():
                    return "crash"
                continue
            if not job.try_start():
                get_metrics().counter("repro.isolation.expired").inc()
                self._finish(job)
                continue
            self._set_state(slot, "busy")
            outcome = self._run_one(slot, worker, job)
            self._set_state(slot, "idle" if outcome == "ok" else "dead")
            if outcome != "ok":
                return outcome
            if limits.max_requests and worker.served >= limits.max_requests:
                self._count_recycle("requests")
                return "recycle"
            growth = worker.rss_bytes - worker.baseline_rss
            if (
                limits.max_growth_mb
                and growth > limits.max_growth_mb * 1024 * 1024
            ):
                self._count_recycle("growth")
                return "recycle"
            if (
                limits.rss_limit_mb
                and worker.rss_bytes > limits.rss_limit_mb * 1024 * 1024
            ):
                self._count_recycle("rss")
                return "recycle"
        return "closed"

    def _run_one(self, slot: int, worker: _WorkerProcess, job: ProcJob) -> str:
        """Execute one job on one worker; never raises.

        Returns ``"ok"`` (worker reusable), ``"killed"``, ``"oom"`` or
        ``"crash"`` (worker gone; the job has been re-queued or
        failed).
        """
        message = {
            "task": job.task, "payload": job.payload,
            "faults": job.faults, "seed": job.seed, "trace": job.trace,
        }
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            self._requeue_or_fail(job, "crash", "worker pipe broken")
            return "crash"
        started = time.perf_counter()
        kill_at = started + job.kill_after_s
        while True:
            step = min(_POLL_STEP_S * 10, max(0.0, kill_at - time.perf_counter()))
            try:
                if worker.conn.poll(step or _POLL_STEP_S):
                    reply = worker.conn.recv()
                    break
            except (EOFError, OSError):
                # Worker died mid-job (hard OOM, external kill, bug).
                self._reap(worker)
                self._requeue_or_fail(job, "crash", "worker died mid-job")
                return "crash"
            if time.perf_counter() >= kill_at:
                self._hard_kill(slot, worker, job)
                return "killed"
            if not worker.process.is_alive():
                self._reap(worker)
                self._requeue_or_fail(job, "crash", "worker died mid-job")
                return "crash"
        elapsed = time.perf_counter() - started
        worker.served += 1
        worker.rss_bytes = int(reply.get("rss_bytes", worker.rss_bytes))
        if reply.get("spans"):
            # Extend, don't assign: a re-queued job keeps the spans of
            # its failed first attempt (e.g. the kill marker) alongside
            # the retry's trace.
            job.remote_spans.extend(reply["spans"])
        get_metrics().histogram("repro.isolation.job.seconds").observe(elapsed)
        if reply.get("ok"):
            job.result = reply.get("result")
            self._finish(job)
            return "ok"
        if reply.get("kind") == "oom":
            # The worker contained the blow-up and is retiring itself.
            with self._lock:
                self.oom_kills += 1
            get_metrics().counter("repro.isolation.oom_kills").inc()
            self._requeue_or_fail(
                job, "oom",
                f"worker exceeded its memory ceiling "
                f"({self.bootstrap.limits.address_space_mb} MiB)",
            )
            worker.process.join(timeout=5.0)
            return "oom"
        job.error = _decode_error(reply)
        self._finish(job)
        return "ok"

    def _hard_kill(self, slot: int, worker: _WorkerProcess, job: ProcJob) -> None:
        """SIGKILL a worker whose job blew deadline × grace."""
        with get_tracer().span(
            "isolation.worker.kill", slot=slot, pid=worker.pid,
            task=job.task,
        ):
            _log.warning(
                "hard-killing worker %d (pid %d): job %d exceeded %.3gs",
                slot, worker.pid, job.job_id, job.kill_after_s,
            )
            worker.process.kill()
            worker.process.join(timeout=5.0)
            worker.conn.close()
        with self._lock:
            self.kills += 1
        get_metrics().counter("repro.isolation.kills").inc()
        if job.trace:
            # A SIGKILLed worker sends nothing back; synthesize the span
            # it can't, so the stitched trace shows where the job died.
            job.remote_spans.append({
                "kind": "span", "trace": len(job.remote_spans), "id": 0,
                "parent": None, "name": "isolation.task",
                "epoch_s": time.time() - job.kill_after_s,
                "duration_s": job.kill_after_s, "cpu_s": 0.0,
                "status": "error",
                "error": "worker killed: hard deadline blown",
                "attrs": {"task": job.task, "pid": worker.pid,
                          "killed": True, "attempt": job.attempts + 1},
            })
        self._requeue_or_fail(
            job, "deadline_kill",
            f"hard deadline blown ({job.kill_after_s:.3g}s); worker killed",
        )

    def _reap(self, worker: _WorkerProcess) -> None:
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _requeue_or_fail(self, job: ProcJob, kind: str, detail: str) -> None:
        """Victim policy: re-queue once, then answer 503."""
        job.attempts += 1
        remaining = job.deadline - time.monotonic()
        if job.attempts <= 1 and remaining > 0 and job.reset_for_retry():
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                pass
            else:
                with self._lock:
                    self.requeued += 1
                get_metrics().counter("repro.isolation.requeued").inc()
                _log.info(
                    "job %d re-queued after worker %s", job.job_id, kind
                )
                return
        job.error = ServiceUnavailableError(
            detail, retry_after_s=self.retry_after_s, reason="worker_killed"
        )
        self._finish(job)

    def _finish(self, job: ProcJob) -> None:
        job.done.set()
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            self._idle.notify_all()

    def _retire(self, slot: int, worker: _WorkerProcess, reason: str) -> None:
        """Take a worker out of service (graceful when still alive)."""
        if worker.process.is_alive():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.process.kill()
                worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with get_tracer().span(
            "isolation.worker.exit", slot=slot, pid=worker.pid,
            reason=reason, served=worker.served,
        ):
            pass
        with self._lock:
            self._workers[slot] = None
            alive = sum(1 for w in self._workers.values() if w is not None)
        get_metrics().gauge("repro.isolation.workers.alive").set(alive)
        _log.info(
            "worker slot %d down (pid %d, reason=%s, served=%d)",
            slot, worker.pid, reason, worker.served,
        )

    def _count_recycle(self, reason: str) -> None:
        with self._lock:
            self.recycles += 1
        get_metrics().counter("repro.isolation.recycles", reason=reason).inc()

    def _set_state(self, slot: int, state: str) -> None:
        with self._lock:
            self._states[slot] = state

    # -- lifecycle -----------------------------------------------------

    def wait_ready(self, timeout_s: float = SPAWN_TIMEOUT_S) -> bool:
        """Block until at least one worker finished its handshake."""
        return self._ready.wait(timeout=timeout_s)

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Stop accepting, let queued/in-flight jobs finish, shut down.

        Returns ``True`` when every outstanding job completed within
        ``timeout_s`` (stragglers are abandoned to :meth:`shutdown`'s
        worker teardown otherwise).
        """
        self._draining = True
        deadline = time.monotonic() + timeout_s
        with self._idle:
            while self._outstanding > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=min(0.25, remaining))
            clean = self._outstanding == 0
        self.shutdown()
        return clean

    def shutdown(self, *, wait: bool = True) -> None:
        """Kill the pool: retire every worker, join the slot runners."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
        # Fail any job still queued (its slot runners are gone).
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            job.error = ServiceUnavailableError(
                "process pool shut down",
                retry_after_s=self.retry_after_s, reason="drain",
            )
            self._finish(job)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready pool state for ``/healthz`` and ops tooling."""
        with self._lock:
            workers = []
            for slot in sorted(self._workers):
                worker = self._workers[slot]
                workers.append({
                    "slot": slot,
                    "state": self._states.get(slot, "unknown"),
                    "pid": worker.pid if worker else None,
                    "served": worker.served if worker else 0,
                    "rss_bytes": worker.rss_bytes if worker else 0,
                    "restarts": self._restarts[slot],
                })
            return {
                "procs": len(self._workers),
                "alive": sum(
                    1 for w in self._workers.values() if w is not None
                ),
                "queue_depth": self._queue.qsize(),
                "outstanding": self._outstanding,
                "kills": self.kills,
                "oom_kills": self.oom_kills,
                "recycles": self.recycles,
                "restarts": self.restarts,
                "requeued": self.requeued,
                "kill_grace": self.kill_grace,
                "limits": {
                    "address_space_mb": self.bootstrap.limits.address_space_mb,
                    "rss_limit_mb": self.bootstrap.limits.rss_limit_mb,
                    "max_requests": self.bootstrap.limits.max_requests,
                    "max_growth_mb": self.bootstrap.limits.max_growth_mb,
                },
                "workers": workers,
            }

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()
