"""``repro.resilience`` — graceful degradation and fault tolerance.

MWeaver is interactive: a user sits at a spreadsheet waiting for the
candidate list, so a search that blows its budget must degrade into
"the best candidates so far", not an exception or a 504.  This package
holds the four pieces that make the reproduction survive slow queries,
flaky backends and process crashes:

* :mod:`repro.resilience.budget` — a cooperative cancellation token /
  deadline budget threaded through the TPW hot loops.  Exhaustion turns
  into **anytime semantics**: the search stops at the next iteration
  boundary and returns a ranked best-effort candidate set flagged
  ``degraded``, with a machine-readable record of which phase stopped
  and what was skipped.
* :mod:`repro.resilience.faults` — named fault points (error / latency
  / partial-result), seeded and configurable, compiled into the sqlite
  backend, the inverted index, the dataset registry and the worker
  pool so robustness behavior is deterministic and testable.
* :mod:`repro.resilience.retry` — retry with jittered exponential
  backoff plus a circuit breaker around transient backend operations.
* :mod:`repro.resilience.journal` — an append-only per-session journal
  of cell inputs so ``mweaver serve`` recovers every live session after
  a crash or restart.
* :mod:`repro.resilience.isolation` — the *non-cooperative* backstop: a
  supervised subprocess worker pool with hard SIGKILL deadlines, memory
  ceilings, worker recycling and requeue-once crash semantics, opted
  into via ``mweaver serve --isolation=process``.

Everything is zero-cost when unused: the default budget is a shared
no-op, fault points are a single module-global read, and journaling is
off unless the service configures a directory.
"""

from __future__ import annotations

from repro.resilience.budget import (
    NULL_BUDGET,
    REASON_CANCELLED,
    REASON_DEADLINE,
    REASON_LIMIT,
    REASON_WORK,
    Budget,
    Degradation,
    NullBudget,
)
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultSpec,
    active_injector,
    fault_point,
    partial_point,
)
from repro.resilience.isolation import (
    DIAG_TASKS,
    IsolationLimits,
    ProcessWorkerPool,
    WorkerBootstrap,
    backoff_delay,
    snapshot_fault_specs,
)
from repro.resilience.journal import (
    JournaledSession,
    SessionJournal,
    replay_journal,
)
from repro.resilience.retry import (
    CircuitBreaker,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "Budget",
    "NullBudget",
    "NULL_BUDGET",
    "Degradation",
    "REASON_DEADLINE",
    "REASON_WORK",
    "REASON_CANCELLED",
    "REASON_LIMIT",
    "FaultSpec",
    "FaultInjector",
    "FAULT_POINTS",
    "fault_point",
    "partial_point",
    "active_injector",
    "RetryPolicy",
    "retry_call",
    "CircuitBreaker",
    "IsolationLimits",
    "WorkerBootstrap",
    "ProcessWorkerPool",
    "backoff_delay",
    "DIAG_TASKS",
    "snapshot_fault_specs",
    "SessionJournal",
    "JournaledSession",
    "replay_journal",
]
