"""``repro.obs`` — the unified tracing, metrics and logging substrate.

One import point for the three observability primitives:

* :mod:`repro.obs.tracer` — hierarchical span tracing of the TPW
  pipeline (``with get_tracer().span("tpw.weave"): ...``),
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms for the hot paths (index probes, weave widths, prune
  decisions),
* :mod:`repro.obs.log` — stdlib logging under the ``repro.*``
  namespace,

plus :mod:`repro.obs.export` for JSON-lines and human-readable output,
:mod:`repro.obs.explain` for per-search decision provenance (prune
reasons, weave fuse statistics, score decompositions) riding the span
tree, and the operations layer: :mod:`repro.obs.prometheus` (text
exposition), :mod:`repro.obs.slo` (burn-rate objectives),
:mod:`repro.obs.profiler` (sampling profiler) and
:mod:`repro.obs.recorder` (request flight recorder).

Everything is **off by default** and zero-cost-when-disabled: the
shared handles are no-op implementations until :func:`enable` (or the
``REPRO_TRACE`` / ``REPRO_METRICS`` environment switches) swaps in live
ones.  Use :func:`scoped` for temporary enablement::

    from repro import obs

    with obs.scoped() as tracer:
        TPWEngine(db).search(("Avatar", "James Cameron"))
        print(obs.render_tree(tracer.finished))
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator

from repro.obs.explain import (
    NULL_EXPLAIN,
    ExplainRecorder,
    NullExplainRecorder,
    SearchExplanation,
    find_searches,
)
from repro.obs.export import (
    parse_jsonl,
    records_to_spans,
    render_metrics,
    render_tree,
    span_records,
    to_jsonl,
    write_jsonl,
)
from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_enabled,
    set_metrics,
)
from repro.obs.metrics import histogram_quantile
from repro.obs.profiler import SamplingProfiler
from repro.obs.prometheus import (
    ExpositionError,
    parse_exposition,
    render_exposition,
)
from repro.obs.recorder import FlightRecorder, RequestRecord
from repro.obs.slo import Objective, SloTracker, default_objectives
from repro.obs.tracer import (
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    traced,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Stopwatch",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "NullMetrics",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "traced",
    "get_metrics",
    "set_metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "ExplainRecorder",
    "NullExplainRecorder",
    "NULL_EXPLAIN",
    "SearchExplanation",
    "find_searches",
    "enable",
    "disable",
    "scoped",
    "get_logger",
    "setup_logging",
    "to_jsonl",
    "write_jsonl",
    "parse_jsonl",
    "span_records",
    "records_to_spans",
    "render_tree",
    "render_metrics",
    "histogram_quantile",
    "render_exposition",
    "parse_exposition",
    "ExpositionError",
    "Objective",
    "SloTracker",
    "default_objectives",
    "SamplingProfiler",
    "FlightRecorder",
    "RequestRecord",
]


def enable(*, trace: bool = True, metrics: bool = True) -> None:
    """Turn on the selected observability layers globally."""
    if trace:
        enable_tracing()
    if metrics:
        enable_metrics()


def disable() -> None:
    """Turn tracing and metrics back off globally."""
    disable_tracing()
    disable_metrics()


@contextmanager
def scoped(*, trace: bool = True, metrics: bool = True) -> Iterator[Tracer]:
    """Temporarily swap in live tracer/metrics handles, restoring after.

    Yields the tracer in effect inside the block (a fresh live one when
    ``trace`` is requested and tracing was off, the existing handle
    otherwise), so callers can read ``tracer.finished`` on exit.
    """
    from repro.obs import metrics as _metrics_mod
    from repro.obs import tracer as _tracer_mod

    previous_tracer = _tracer_mod.get_tracer()
    previous_metrics = _metrics_mod.get_metrics()
    active = previous_tracer
    if trace and not previous_tracer.enabled:
        active = set_tracer(Tracer())
    if metrics and not previous_metrics.enabled:
        set_metrics(MetricsRegistry())
    try:
        yield active  # type: ignore[misc]
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


# Environment switches: REPRO_TRACE / REPRO_METRICS enable the layers at
# import time; REPRO_LOG_LEVEL additionally attaches a stderr handler.
if _truthy(os.environ.get("REPRO_TRACE")):
    enable_tracing()
if _truthy(os.environ.get("REPRO_METRICS")):
    enable_metrics()
if os.environ.get("REPRO_LOG_LEVEL"):
    setup_logging()
