"""Tests for the cooperative search budget (anytime cancellation token)."""

import threading

import pytest

from repro.resilience import (
    NULL_BUDGET,
    Budget,
    NullBudget,
    REASON_CANCELLED,
    REASON_DEADLINE,
    REASON_LIMIT,
    REASON_WORK,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestWorkBudget:
    def test_under_budget_is_not_exhausted(self):
        budget = Budget(max_work=10)
        budget.charge(10)
        assert not budget.exhausted()

    def test_over_budget_trips(self):
        budget = Budget(max_work=10)
        budget.charge(11)
        assert budget.exhausted()
        assert budget.reason == REASON_WORK

    def test_exhaustion_is_sticky(self):
        budget = Budget(max_work=1)
        budget.charge(5)
        assert budget.exhausted()
        # Un-tripping the underlying condition must not revive it.
        budget._work = 0
        assert budget.exhausted()

    def test_work_property_counts_charges(self):
        budget = Budget()
        budget.charge()
        budget.charge(4)
        assert budget.work == 5


class TestDeadline:
    def test_deadline_checked_via_injected_clock(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock, check_stride=1)
        assert not budget.exhausted()
        clock.now = 1.5
        assert budget.exhausted()
        assert budget.reason == REASON_DEADLINE

    def test_stride_batches_clock_reads(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock, check_stride=4)
        assert not budget.exhausted()  # call 1 always reads the clock
        clock.now = 2.0
        # Calls 2 and 3 skip the clock; call 4 (stride boundary) reads it.
        assert not budget.exhausted()
        assert not budget.exhausted()
        assert budget.exhausted()

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = Budget(deadline_s=2.0, clock=clock)
        clock.now = 0.5
        assert budget.remaining_s() == pytest.approx(1.5)
        clock.now = 5.0
        assert budget.remaining_s() == 0.0
        assert Budget().remaining_s() is None


class TestCancellation:
    def test_cancel_trips_the_budget(self):
        budget = Budget()
        budget.cancel()
        assert budget.exhausted()
        assert budget.reason == REASON_CANCELLED

    def test_cancel_from_another_thread_is_seen(self):
        budget = Budget()
        seen = threading.Event()

        def cancel():
            budget.cancel()
            seen.set()

        thread = threading.Thread(target=cancel)
        thread.start()
        thread.join()
        assert seen.is_set()
        assert budget.exhausted()


class TestDegradationRecords:
    def test_stop_records_phase_and_skipped_work(self):
        budget = Budget(max_work=1)
        budget.charge(2)
        assert budget.exhausted()
        record = budget.stop("pairwise", walks_explored=3, keys_unexplored=2)
        assert record.phase == "pairwise"
        assert record.reason == REASON_WORK
        assert record.skipped == {"walks_explored": 3, "keys_unexplored": 2}
        assert budget.degraded

    def test_summary_headline_is_the_first_degradation(self):
        budget = Budget(max_work=1)
        budget.charge(2)
        budget.exhausted()
        budget.stop("instantiate", queries_run=4)
        budget.stop("rank", groups_unscored=7)
        summary = budget.summary()
        assert summary["degraded"] is True
        assert summary["phase"] == "instantiate"
        assert summary["reason"] == REASON_WORK
        assert [p["phase"] for p in summary["phases"]] == [
            "instantiate", "rank",
        ]

    def test_reason_override_for_config_limits(self):
        budget = Budget()
        record = budget.stop("weave", reason=REASON_LIMIT, paths_dropped=10)
        assert record.reason == REASON_LIMIT
        assert budget.degraded

    def test_clean_budget_summary_is_none(self):
        assert Budget().summary() is None


class TestNullBudget:
    def test_is_the_inert_default(self):
        assert isinstance(NULL_BUDGET, NullBudget)
        assert NULL_BUDGET.live is False
        assert Budget.live is True

    def test_never_exhausts_or_records(self):
        assert not NULL_BUDGET.exhausted()
        NULL_BUDGET.charge(10_000)
        NULL_BUDGET.cancel()
        NULL_BUDGET.stop("pairwise", anything=1)
        assert not NULL_BUDGET.exhausted()
        assert NULL_BUDGET.degraded is False
        assert NULL_BUDGET.summary() is None


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"deadline_s": 0.0},
        {"deadline_s": -1.0},
        {"max_work": 0},
        {"check_stride": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)
