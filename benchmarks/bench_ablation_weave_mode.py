"""Ablation — greedy (Algorithm 6) vs exhaustive weaving.

The interactive default only attaches a pairwise path's tail when
fusion fails (the paper's semantics); exhaustive mode also explores the
attach option where fusion would succeed, which adds homomorphically
redundant candidates that user samples can never prune.

Expected shape: exhaustive mode weaves strictly more tuple paths and
returns at least as many candidates, at higher cost — and every greedy
candidate is also found by exhaustive mode (subset relation).
"""

from statistics import mean

from repro.bench.harness import run_tpw_search, sample_tuple_for
from repro.bench.reporting import format_table, write_result
from repro.config import TPWConfig
from repro.core.tpw import TPWEngine
from repro.datasets.workload import user_study_task_yahoo

REPEATS = 3


def test_ablation_weave_mode(benchmark, yahoo_db):
    task = user_study_task_yahoo()
    rows = []
    measured = {}
    for label, config in (
        ("greedy (paper)", TPWConfig()),
        ("exhaustive", TPWConfig(exhaustive_weave=True)),
    ):
        times = []
        candidates = []
        woven = []
        for repeat in range(REPEATS):
            cell = run_tpw_search(yahoo_db, task, seed=repeat, config=config)
            times.append(cell.seconds * 1000)
            candidates.append(cell.result.n_candidates)
            woven.append(cell.result.stats.total_tuple_paths_processed())
        measured[label] = (mean(times), mean(candidates), mean(woven))
        rows.append(
            [label, f"{mean(times):.2f}", f"{mean(candidates):.2f}",
             f"{mean(woven):.2f}"]
        )

    table = format_table(
        ["weave mode", "search (ms)", "candidates", "tuple paths"],
        rows,
        title="Ablation: greedy vs exhaustive weaving (user-study task)",
    )
    write_result("ablation_weave_mode.txt", table)

    greedy = measured["greedy (paper)"]
    exhaustive = measured["exhaustive"]
    assert exhaustive[1] >= greedy[1]
    assert exhaustive[2] >= greedy[2]

    # Subset check on one concrete run.
    samples = sample_tuple_for(yahoo_db, task, seed=0)
    greedy_found = {
        m.signature()
        for m in TPWEngine(yahoo_db, TPWConfig()).search(samples).mappings
    }
    exhaustive_found = {
        m.signature()
        for m in TPWEngine(yahoo_db, TPWConfig(exhaustive_weave=True))
        .search(samples)
        .mappings
    }
    assert greedy_found <= exhaustive_found

    benchmark(lambda: run_tpw_search(yahoo_db, task, seed=1))
