"""SLO objectives and multi-window burn-rate math.

Every test drives the :class:`SloTracker` through an injected fake
clock, so window rotation and bucket expiry are deterministic — no
sleeps, no wall-clock flakiness.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    ALERT_BURN_RATE,
    Objective,
    SloTracker,
    default_objectives,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestObjective:
    def test_budget_is_one_minus_target(self):
        assert Objective("a", target=0.99).budget == pytest.approx(0.01)

    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="target"):
            Objective("a", target=1.0)
        with pytest.raises(ValueError, match="target"):
            Objective("a", target=0.0)

    def test_latency_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="latency_s"):
            Objective("a", target=0.9, latency_s=0.0)

    def test_error_is_always_bad(self):
        objective = Objective("a", target=0.99)
        assert objective.is_bad(error=True, duration_s=0.001)
        assert not objective.is_bad(error=False, duration_s=99.0)

    def test_latency_objective_counts_slow_requests(self):
        objective = Objective("a", target=0.95, latency_s=0.25)
        assert objective.is_bad(error=False, duration_s=0.3)
        assert not objective.is_bad(error=False, duration_s=0.2)


class TestBurnRates:
    def make(self, clock, **kwargs):
        return SloTracker(
            (Objective("availability", target=0.99),),
            windows=(60.0, 600.0),
            bucket_s=10.0,
            clock=clock,
            **kwargs,
        )

    def test_no_traffic_burns_nothing(self):
        tracker = self.make(FakeClock())
        state = tracker.burn_rates()["availability"]
        assert state["alerting"] is False
        for window in state["windows"].values():
            assert window == {
                "good": 0, "bad": 0, "bad_fraction": 0.0,
                "burn_rate": 0.0, "alerting": False,
            }

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        tracker = self.make(clock)
        for _ in range(98):
            tracker.record(error=False, duration_s=0.01)
        for _ in range(2):
            tracker.record(error=True, duration_s=0.01)
        window = tracker.burn_rates()["availability"]["windows"]["60s"]
        assert window["bad_fraction"] == pytest.approx(0.02)
        # 2% bad against a 1% budget: burning at 2x the sustainable rate.
        assert window["burn_rate"] == pytest.approx(2.0)

    def test_total_outage_alerts(self):
        clock = FakeClock()
        tracker = self.make(clock)
        for _ in range(50):
            tracker.record(error=True, duration_s=0.01)
        state = tracker.burn_rates()["availability"]
        # 100% bad / 1% budget = burn rate 100 — over any alert bar.
        assert state["windows"]["60s"]["burn_rate"] == pytest.approx(100.0)
        assert state["windows"]["60s"]["burn_rate"] >= ALERT_BURN_RATE
        assert state["alerting"] is True

    def test_short_window_recovers_while_long_window_remembers(self):
        clock = FakeClock()
        tracker = self.make(clock)
        for _ in range(10):
            tracker.record(error=True, duration_s=0.01)
        # 2 minutes later the 60 s window no longer sees the outage,
        # the 600 s window still does.
        clock.tick(120.0)
        for _ in range(10):
            tracker.record(error=False, duration_s=0.01)
        windows = tracker.burn_rates()["availability"]["windows"]
        assert windows["60s"]["bad"] == 0
        assert windows["60s"]["burn_rate"] == 0.0
        assert windows["600s"]["bad"] == 10
        assert windows["600s"]["burn_rate"] > 0

    def test_everything_expires_past_the_longest_window(self):
        clock = FakeClock()
        tracker = self.make(clock)
        for _ in range(10):
            tracker.record(error=True, duration_s=0.01)
        clock.tick(601.0)
        windows = tracker.burn_rates()["availability"]["windows"]
        assert windows["600s"] == {
            "good": 0, "bad": 0, "bad_fraction": 0.0,
            "burn_rate": 0.0, "alerting": False,
        }

    def test_latency_objective_burns_on_slow_requests(self):
        clock = FakeClock()
        tracker = SloTracker(
            (Objective("latency", target=0.95, latency_s=0.25),),
            windows=(60.0,), clock=clock,
        )
        tracker.record(error=False, duration_s=0.5)   # slow = bad
        tracker.record(error=False, duration_s=0.1)   # fast = good
        window = tracker.burn_rates()["latency"]["windows"]["60s"]
        assert (window["good"], window["bad"]) == (1, 1)


class TestValidation:
    def test_rejects_empty_objectives(self):
        with pytest.raises(ValueError, match="objective"):
            SloTracker(())

    def test_rejects_empty_windows(self):
        with pytest.raises(ValueError, match="window"):
            SloTracker((Objective("a", target=0.9),), windows=())


class TestPublish:
    def test_publishes_one_gauge_per_objective_window(self):
        clock = FakeClock()
        tracker = SloTracker(
            default_objectives(), windows=(60.0, 600.0), clock=clock
        )
        for _ in range(4):
            tracker.record(error=True, duration_s=0.01)
        registry = MetricsRegistry()
        tracker.publish(registry)
        snapshot = registry.snapshot()["gauges"]
        for objective in ("availability", "latency"):
            for window in ("60s", "600s"):
                key = (
                    "repro.slo.burn_rate"
                    f"{{objective={objective},window={window}}}"
                )
                assert snapshot[key] > 0
            assert (
                snapshot[f"repro.slo.alerting{{objective={objective}}}"] == 1
            )


class TestDefaultObjectives:
    def test_shape(self):
        availability, latency = default_objectives(
            latency_s=0.5, availability=0.999, latency_target=0.9
        )
        assert availability.name == "availability"
        assert availability.target == 0.999
        assert availability.latency_s is None
        assert latency.name == "latency"
        assert latency.latency_s == 0.5
        assert "500ms" in latency.description
