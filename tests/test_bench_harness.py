"""Tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    run_feeder_aggregate,
    run_naive_search,
    run_tpw_search,
    sample_tuple_for,
)
from repro.bench.reporting import ascii_series, format_table, write_result
from repro.core.stats import SearchStats
from repro.datasets.workload import build_task_sets


@pytest.fixture(scope="module")
def simple_task():
    return build_task_sets()[0].tasks[0]


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["x", 1], ["long", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 6 for line in lines)

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["v"], [[3.14159]])
        assert "3.14" in table and "3.14159" not in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestAsciiSeries:
    def test_bars_scale_to_peak(self):
        text = ascii_series([(1, 10.0), (2, 5.0)], width=10, label="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_zero_values_have_no_bar(self):
        text = ascii_series([(1, 0.0)], label="flat")
        assert "#" not in text

    def test_empty(self):
        assert "(no data)" in ascii_series([], label="x")


class TestWriteResult:
    def test_writes_and_prints(self, capsys, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(
            reporting, "results_path", lambda name: tmp_path / name
        )
        path = write_result("demo.txt", "hello world")
        assert capsys.readouterr().out.strip() == "hello world"
        assert path.read_text().strip() == "hello world"


class TestHarnessDrivers:
    def test_sample_tuple_deterministic(self, yahoo_db, simple_task):
        one = sample_tuple_for(yahoo_db, simple_task, seed=4)
        two = sample_tuple_for(yahoo_db, simple_task, seed=4)
        assert one == two
        assert len(one) == simple_task.target_size

    def test_run_tpw_search(self, yahoo_db, simple_task):
        cell = run_tpw_search(yahoo_db, simple_task, seed=1)
        assert cell.seconds > 0
        assert cell.result.n_candidates >= 1

    def test_run_naive_search_completes_small(self, yahoo_db, simple_task):
        cell = run_naive_search(yahoo_db, simple_task, seed=1)
        assert not cell.exceeded
        assert cell.valid is not None and cell.valid >= 1
        assert cell.display_seconds != "-"

    def test_run_naive_search_budget(self, yahoo_db, simple_task):
        cell = run_naive_search(
            yahoo_db, simple_task, seed=1, max_candidates=1
        )
        assert cell.exceeded
        assert cell.display_seconds == "-"
        assert cell.display_enumerated == "-"

    def test_run_feeder_aggregate(self, yahoo_db, simple_task):
        aggregate = run_feeder_aggregate(
            yahoo_db, simple_task, n_runs=3, seed=1
        )
        assert aggregate.samples_to_goal >= simple_task.target_size
        assert aggregate.convergence_rate == 1.0
        assert aggregate.search_ms > 0
        # padded series: monotone non-increasing means
        means = [count for _s, count in aggregate.candidates_by_samples]
        assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
        assert means[-1] <= 1.0 + 1e-9


class TestTraceSnapshots:
    def test_run_tpw_search_writes_trace_and_metrics(
        self, yahoo_db, simple_task, tmp_path, monkeypatch
    ):
        from repro import obs
        from repro.bench import harness

        monkeypatch.setattr(
            harness, "results_path", lambda name: tmp_path / name
        )
        cell = run_tpw_search(
            yahoo_db, simple_task, seed=1, trace_name="trace.jsonl"
        )
        assert cell.result.n_candidates >= 1
        roots, metrics = obs.parse_jsonl(
            (tmp_path / "trace.jsonl").read_text()
        )
        assert any(
            span.name == "tpw.search" for root in roots for span in root.walk()
        )
        assert metrics is not None

    def test_run_tpw_search_accounts_resources(self, yahoo_db, simple_task):
        cell = run_tpw_search(
            yahoo_db, simple_task, seed=1, measure_resources=True
        )
        assert cell.resources is not None
        assert cell.resources.wall_s > 0
        assert cell.resources.py_peak_bytes > 0
        assert cell.seconds == cell.resources.wall_s

    def test_run_feeder_aggregate_writes_session_trace(
        self, yahoo_db, simple_task, tmp_path, monkeypatch
    ):
        from repro import obs
        from repro.bench import harness

        monkeypatch.setattr(
            harness, "results_path", lambda name: tmp_path / name
        )
        aggregate = run_feeder_aggregate(
            yahoo_db, simple_task, n_runs=2, seed=1,
            trace_name="feeder.jsonl",
        )
        assert aggregate.convergence_rate == 1.0
        roots, metrics = obs.parse_jsonl(
            (tmp_path / "feeder.jsonl").read_text()
        )
        names = {span.name for root in roots for span in root.walk()}
        assert "session.search" in names
        assert "tpw.search" in names
        assert metrics is not None


class TestStatsHelpers:
    def test_level_profile_includes_pairwise(self):
        stats = SearchStats()
        stats.pairwise_tuple_paths = 5
        stats.kept_per_level[3] = 2
        assert stats.level_profile() == {2: 5, 3: 2}

    def test_total_processed(self):
        stats = SearchStats()
        stats.pairwise_tuple_paths = 5
        stats.woven_per_level[3] = 7
        stats.woven_per_level[4] = 2
        assert stats.total_tuple_paths_processed() == 14

    def test_describe_mentions_counts(self):
        stats = SearchStats()
        stats.pairwise_mapping_paths = 4
        stats.timings["total"] = 0.01
        text = stats.describe()
        assert "pairwise mapping paths: 4" in text
        assert "total=10.0ms" in text
