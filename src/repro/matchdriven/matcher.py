"""Attribute correspondence proposal (the matching phase).

A hybrid matcher in the style the paper surveys (§2): a *schema-based*
signal (name similarity between the target column label and the source
attribute, with identifier tokenization) blended with an optional
*instance-based* signal (what fraction of known sample values the
attribute contains — the QuickMig idea).  Scores rank candidate
correspondences per target column; the pipeline consumes the top one,
a human in a match-driven tool reviews the list.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.relational.database import Database
from repro.text.errors import ErrorModel, default_error_model
from repro.text.similarity import jaccard_similarity
from repro.text.tokenize import tokenize

#: Blend weights: instance evidence dominates when present.
NAME_WEIGHT = 0.4
INSTANCE_WEIGHT = 0.6

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


@dataclass(frozen=True)
class Correspondence:
    """One proposed match: target column → source attribute."""

    column: int
    relation: str
    attribute: str
    score: float
    name_score: float
    instance_score: float

    def describe(self) -> str:
        """One-line rendering for match-review lists."""
        return (
            f"column {self.column} ~ {self.relation}.{self.attribute} "
            f"(score {self.score:.2f}; name {self.name_score:.2f}, "
            f"instance {self.instance_score:.2f})"
        )


def identifier_tokens(identifier: str) -> tuple[str, ...]:
    """Tokenize an identifier: camelCase and snake_case both split.

    >>> identifier_tokens("ReleaseDate")
    ('release', 'date')
    >>> identifier_tokens("release_date")
    ('release', 'date')
    """
    spaced = _CAMEL_BOUNDARY.sub(" ", identifier).replace("_", " ")
    return tokenize(spaced)


def name_similarity(column_name: str, relation: str, attribute: str) -> float:
    """Schema-based signal: token overlap of the identifiers.

    The attribute name carries most of the weight; the relation name
    contributes so that ``company.name`` scores for a column called
    ``ProductionCompany``.
    """
    column_tokens = set(identifier_tokens(column_name))
    attribute_tokens = set(identifier_tokens(attribute))
    relation_tokens = set(identifier_tokens(relation))
    direct = jaccard_similarity(column_tokens, attribute_tokens)
    contextual = jaccard_similarity(
        column_tokens, attribute_tokens | relation_tokens
    )
    return max(direct, 0.8 * contextual)


def instance_coverage(
    db: Database,
    relation: str,
    attribute: str,
    samples: Sequence[str],
    model: ErrorModel,
) -> float:
    """Instance-based signal: fraction of samples the attribute contains."""
    if not samples:
        return 0.0
    contained = sum(
        1
        for sample in samples
        if db.attribute_contains(relation, attribute, sample, model)
    )
    return contained / len(samples)


def propose_correspondences(
    db: Database,
    column_names: Sequence[str],
    *,
    samples_by_column: Mapping[int, Sequence[str]] | None = None,
    top_k: int = 5,
    model: ErrorModel | None = None,
) -> dict[int, list[Correspondence]]:
    """Rank candidate correspondences for every target column.

    Returns, per column index, up to ``top_k`` proposals sorted by
    blended score (ties broken alphabetically for determinism).
    Columns with no positive-scoring attribute get an empty list — the
    user would have to scan the schema manually, the situation the
    paper's Figure 3 illustrates.
    """
    model = model or default_error_model()
    samples_by_column = samples_by_column or {}
    proposals: dict[int, list[Correspondence]] = {}
    for column, column_name in enumerate(column_names):
        samples = list(samples_by_column.get(column, ()))
        scored = []
        for relation, attribute in db.schema.text_attribute_pairs():
            name_score = name_similarity(column_name, relation, attribute)
            instance_score = instance_coverage(
                db, relation, attribute, samples, model
            )
            if samples:
                score = (
                    NAME_WEIGHT * name_score + INSTANCE_WEIGHT * instance_score
                )
            else:
                score = name_score
            if score > 0:
                scored.append(
                    Correspondence(
                        column=column,
                        relation=relation,
                        attribute=attribute,
                        score=score,
                        name_score=name_score,
                        instance_score=instance_score,
                    )
                )
        scored.sort(
            key=lambda c: (-c.score, c.relation, c.attribute)
        )
        proposals[column] = scored[:top_k]
    return proposals
