"""Latency-aware admission control (load shedding) for the service.

The bounded work queue already rejects when *full* (429); that is a
depth limit, blind to how slow jobs currently are.  Under a burst of
expensive searches a queue slot is no promise of timely service — a
request admitted at depth 30 with 1-second searches will wait ~30
seconds and die as a 504 *after* consuming its slot the whole time.

:class:`AdmissionController` sheds earlier and cheaper: it tracks an
EWMA of observed job latency, estimates the queue wait a new request
would face (``depth × ewma / workers``), and refuses with
:class:`~repro.exceptions.ServiceUnavailableError` (HTTP 503 +
``Retry-After``, ``reason="shed"``) when that estimate exceeds
``shed_factor ×`` the request deadline.  Failing fast keeps the queue
short enough that *accepted* requests still meet their deadlines —
the goodput-preserving half of overload protection.

Cold-start safety: the EWMA starts at zero, so an unloaded service
never sheds — behavior is identical to not having the controller until
real latency observations accumulate.
"""

from __future__ import annotations

import threading

from repro.exceptions import ServiceUnavailableError
from repro.obs import get_metrics
from repro.service.retry_after import clamp_retry_after

#: EWMA smoothing: each new sample carries this weight.
ALPHA = 0.2


class AdmissionController:
    """Sheds requests whose estimated queue wait blows their deadline."""

    def __init__(
        self,
        *,
        workers: int,
        shed_factor: float,
        retry_after_s: float = 1.0,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.shed_factor = shed_factor
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._ewma_s = 0.0
        self.shed = 0

    @property
    def ewma_s(self) -> float:
        """Current latency estimate per job (seconds)."""
        with self._lock:
            return self._ewma_s

    def observe(self, seconds: float) -> None:
        """Feed one completed job's latency into the estimate."""
        if seconds < 0:
            return
        with self._lock:
            if self._ewma_s == 0.0:
                self._ewma_s = seconds
            else:
                self._ewma_s += ALPHA * (seconds - self._ewma_s)

    def estimated_wait_s(self, queue_depth: int) -> float:
        """Expected queue wait for a request admitted right now."""
        with self._lock:
            return queue_depth * self._ewma_s / self.workers

    def check(self, queue_depth: int, deadline_s: float) -> None:
        """Admit or shed one request (raises to shed).

        ``queue_depth`` is the work queue's current depth and
        ``deadline_s`` the request's end-to-end deadline.  A shed
        response hints ``Retry-After`` at the estimated drain time so
        well-behaved clients spread their retries past the burst.
        """
        if self.shed_factor <= 0 or deadline_s <= 0:
            return
        estimate = self.estimated_wait_s(queue_depth)
        if estimate <= self.shed_factor * deadline_s:
            return
        with self._lock:
            self.shed += 1
        get_metrics().counter("repro.isolation.shed").inc()
        raise ServiceUnavailableError(
            f"estimated queue wait {estimate:.2f}s exceeds "
            f"{self.shed_factor:g}x the {deadline_s:g}s deadline",
            retry_after_s=clamp_retry_after(estimate, self.retry_after_s),
            reason="shed",
        )

    def snapshot(self) -> dict[str, float]:
        """JSON-ready state for ``/healthz``."""
        with self._lock:
            return {
                "ewma_job_s": round(self._ewma_s, 6),
                "shed": self.shed,
                "shed_factor": self.shed_factor,
                "workers": self.workers,
            }
