"""Tests for mapping explanations."""

import pytest

from repro.core.explain import explain_mapping
from repro.core.tpw import TPWEngine


@pytest.fixture()
def yates_result(running_db):
    result = TPWEngine(running_db).search(("Harry Potter", "David Yates"))
    assert result.n_candidates == 1
    return result


class TestExplainMapping:
    def test_tree_rendered(self, running_db, yates_result):
        text = explain_mapping(yates_result.best().mapping, running_db)
        assert "join tree:" in text
        assert "movie" in text and "person" in text
        assert "-[direct_mid]->" in text or "-[direct_pid]->" in text

    def test_correspondences(self, running_db, yates_result):
        text = explain_mapping(
            yates_result.best().mapping,
            running_db,
            column_names=["Name", "Director"],
        )
        assert "Name  <-  movie.title" in text
        assert "Director  <-  person.name" in text

    def test_default_column_names(self, running_db, yates_result):
        text = explain_mapping(yates_result.best().mapping, running_db)
        assert "col0  <-  movie.title" in text

    def test_example_row_from_execution(self, running_db, yates_result):
        text = explain_mapping(yates_result.best().mapping, running_db)
        assert "example target row:" in text

    def test_example_tuple_path_sources(self, running_db, yates_result):
        candidate = yates_result.best()
        text = explain_mapping(
            candidate.mapping,
            running_db,
            column_names=["Name", "Director"],
            example=candidate.tuple_paths[0],
        )
        assert "supported by source tuples:" in text
        assert "Harry Potter" in text
        assert "David Yates" in text

    def test_target_columns_annotated_in_tree(self, running_db, yates_result):
        text = explain_mapping(yates_result.best().mapping, running_db)
        assert "(target column 0)" in text
        assert "(target column 1)" in text

    def test_multi_projection_vertex(self, running_db):
        result = TPWEngine(running_db).search(("Ed Wood", "Ed Wood"))
        single = next(
            candidate
            for candidate in result.candidates
            if candidate.mapping.n_joins == 0
            and len({v for v, _a in candidate.mapping.projections.values()}) == 1
        )
        text = explain_mapping(single.mapping, running_db)
        assert "target columns 0, 1" in text
