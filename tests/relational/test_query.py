"""Unit tests for the join-tree query representation."""

import pytest

from repro.exceptions import QueryError
from repro.relational.query import ContainsPredicate, JoinTree, JoinTreeEdge
from repro.text.errors import CaseTokenModel


def movie_direct_person() -> JoinTree:
    return JoinTree(
        {0: "movie", 1: "direct", 2: "person"},
        (
            JoinTreeEdge(0, 1, "direct_mid", 1),
            JoinTreeEdge(1, 2, "direct_pid", 1),
        ),
    )


class TestJoinTreeEdge:
    def test_other(self):
        edge = JoinTreeEdge(0, 1, "f", 0)
        assert edge.other(0) == 1
        assert edge.other(1) == 0

    def test_other_unknown_vertex(self):
        with pytest.raises(QueryError):
            JoinTreeEdge(0, 1, "f", 0).other(2)

    def test_self_edge_rejected(self):
        with pytest.raises(QueryError):
            JoinTreeEdge(0, 0, "f", 0)

    def test_source_vertex_must_be_endpoint(self):
        with pytest.raises(QueryError):
            JoinTreeEdge(0, 1, "f", 2)

    def test_leaving_source(self):
        edge = JoinTreeEdge(0, 1, "f", 0)
        assert edge.leaving_source(0)
        assert not edge.leaving_source(1)


class TestJoinTree:
    def test_single_vertex(self):
        tree = JoinTree({0: "movie"})
        assert tree.n_joins == 0
        assert tree.terminal_vertices() == (0,)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            JoinTree({})

    def test_edge_count_must_match(self):
        with pytest.raises(QueryError):
            JoinTree({0: "a", 1: "b"})  # two vertices, no edge

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError):
            JoinTree(
                {0: "a", 1: "b", 2: "c", 3: "d"},
                (JoinTreeEdge(0, 1, "f", 0), JoinTreeEdge(2, 3, "g", 2)),
            )

    def test_cycle_rejected_by_edge_count(self):
        with pytest.raises(QueryError):
            JoinTree(
                {0: "a", 1: "b"},
                (JoinTreeEdge(0, 1, "f", 0), JoinTreeEdge(0, 1, "g", 0)),
            )

    def test_unknown_edge_vertex(self):
        with pytest.raises(QueryError):
            JoinTree({0: "a", 1: "b"}, (JoinTreeEdge(0, 9, "f", 0),))

    def test_relation_of(self):
        tree = movie_direct_person()
        assert tree.relation_of(2) == "person"

    def test_relation_of_unknown(self):
        with pytest.raises(QueryError):
            movie_direct_person().relation_of(9)

    def test_terminal_vertices(self):
        assert set(movie_direct_person().terminal_vertices()) == {0, 2}

    def test_degree(self):
        tree = movie_direct_person()
        assert tree.degree(1) == 2
        assert tree.degree(0) == 1

    def test_neighbors(self):
        tree = movie_direct_person()
        assert len(tree.neighbors(1)) == 2

    def test_traversal_order_root_first(self):
        tree = movie_direct_person()
        order = tree.traversal_order(2)
        assert order[0] == (2, None)
        assert [vertex for vertex, _edge in order] == [2, 1, 0]

    def test_traversal_covers_all_vertices(self):
        tree = movie_direct_person()
        for root in tree.vertices:
            order = tree.traversal_order(root)
            assert sorted(vertex for vertex, _ in order) == [0, 1, 2]

    def test_describe_single(self):
        assert JoinTree({7: "movie"}).describe() == "movie"

    def test_describe_edges(self):
        text = movie_direct_person().describe()
        assert "direct_mid" in text
        assert "person#2" in text

    def test_validate_against_running_schema(self, running_db):
        movie_direct_person().validate_against(running_db.schema)

    def test_validate_unknown_relation(self, running_db):
        tree = JoinTree({0: "nope"})
        with pytest.raises(QueryError):
            tree.validate_against(running_db.schema)

    def test_validate_wrong_fk_endpoints(self, running_db):
        tree = JoinTree(
            {0: "movie", 1: "person"},
            (JoinTreeEdge(0, 1, "direct_mid", 0),),  # direct_mid joins direct->movie
        )
        with pytest.raises(QueryError):
            tree.validate_against(running_db.schema)


class TestContainsPredicate:
    def test_fields(self):
        predicate = ContainsPredicate(0, "title", "Avatar", CaseTokenModel())
        assert predicate.vertex == 0
        assert predicate.attribute == "title"
