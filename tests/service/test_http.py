"""Tests for the HTTP layer: a real loopback server and raw sockets."""

import http.client
import json

import pytest

from repro.service.http import MAX_BODY_BYTES, MappingServer


@pytest.fixture
def server(app):
    with MappingServer(app, port=0) as server:
        yield server


@pytest.fixture
def conn(server):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
    yield conn
    conn.close()


def call(conn, method, path, body=None, *, raw=None, headers=None):
    payload = raw
    if payload is None and body is not None:
        payload = json.dumps(body).encode("utf-8")
    send_headers = {"Content-Type": "application/json"} if payload else {}
    send_headers.update(headers or {})
    conn.request(method, path, body=payload, headers=send_headers)
    response = conn.getresponse()
    data = response.read()
    return response, json.loads(data) if data else None


class TestRoundTrip:
    def test_healthz_over_the_wire(self, conn):
        response, body = call(conn, "GET", "/healthz")
        assert response.status == 200
        assert body["status"] == "ok"
        assert response.getheader("Content-Type") == "application/json"

    def test_full_flow_on_one_keepalive_connection(self, conn):
        response, created = call(conn, "POST", "/sessions", {})
        assert response.status == 201
        session_id = created["session_id"]
        for row, column, value in (
            (0, 0, "Avatar"), (0, 1, "James Cameron"),
            (1, 0, "Big Fish"), (1, 1, "Tim Burton"),
        ):
            response, state = call(
                conn, "POST", f"/sessions/{session_id}/cells",
                {"row": row, "column": column, "value": value},
            )
            assert response.status == 200
        assert state["converged"] is True
        response, body = call(
            conn, "GET", f"/sessions/{session_id}/candidates?limit=1&sql=1"
        )
        assert response.status == 200
        assert body["candidates"][0]["sql"].startswith("SELECT")
        response, body = call(conn, "DELETE", f"/sessions/{session_id}")
        assert response.status == 204
        assert body is None
        response, _ = call(conn, "GET", f"/sessions/{session_id}")
        assert response.status == 404

    def test_unknown_route_is_json_404(self, conn):
        response, body = call(conn, "GET", "/bogus")
        assert response.status == 404
        assert "error" in body


class TestBodyHandling:
    def test_invalid_json_is_400(self, conn):
        response, body = call(conn, "POST", "/sessions", raw=b"{nope")
        assert response.status == 400
        assert "invalid JSON" in body["error"]

    def test_non_object_body_is_400(self, conn):
        response, body = call(conn, "POST", "/sessions", raw=b"[1, 2]")
        assert response.status == 400
        assert "must be an object" in body["error"]

    def test_oversized_body_is_413(self, conn):
        # Claim a huge body without sending it; the server answers from
        # the Content-Length alone.
        conn.putrequest("POST", "/sessions")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 413
        response.read()


class TestLifecycle:
    def test_port_zero_binds_an_ephemeral_port(self, server):
        assert server.port != 0
        assert server.url == f"http://{server.host}:{server.port}"

    def test_shutdown_is_idempotent_via_app_close(self, app):
        server = MappingServer(app, port=0).start()
        server.shutdown()
        app.close()  # second close must be a no-op
