"""The synthetic mapping-task workload of Section 6.2.

Three task sets, sharing one relation path each (two, three and four
joins respectively), with four mappings per set whose target schema
size ranges from three to six columns.  Plus the user-study task of
Figure 11 — "title / release date / production company / director" —
for both the Yahoo-Movies-like and the IMDb-like sources.

Tasks are described purely at the schema level (relation and attribute
names), so the same task runs against any database generated from the
matching schema, at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping_path import MappingPath
from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.query import JoinTree, JoinTreeEdge


@dataclass(frozen=True)
class MappingTask:
    """One goal mapping with display names for the target columns."""

    name: str
    dataset: str
    columns: tuple[str, ...]
    goal: MappingPath

    @property
    def target_size(self) -> int:
        """Target schema size ``m``."""
        return len(self.columns)

    @property
    def n_joins(self) -> int:
        """Joins in the goal mapping's relation path."""
        return self.goal.n_joins

    def target_rows(self, db: Database, *, limit: int = 400) -> list[tuple[str, ...]]:
        """Materialise target instance rows usable as samples.

        Rows containing NULLs or empty strings are dropped (a NULL can
        never be typed as a sample), values are stringified, and
        duplicates are removed while preserving order.
        """
        rows: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for row in self.goal.execute(db, limit=limit * 3):
            if any(value is None or str(value).strip() == "" for value in row):
                continue
            as_text = tuple(str(value) for value in row)
            if as_text in seen:
                continue
            seen.add(as_text)
            rows.append(as_text)
            if len(rows) >= limit:
                break
        if not rows:
            raise DatasetError(
                f"task {self.name!r}: goal mapping produced no usable rows"
            )
        return rows


@dataclass(frozen=True)
class TaskSet:
    """One of the three task sets (all mappings share a relation path)."""

    set_id: int
    n_joins: int
    tasks: tuple[MappingTask, ...]

    def task_for_size(self, target_size: int) -> MappingTask:
        """The task whose target schema has ``target_size`` columns."""
        for task in self.tasks:
            if task.target_size == target_size:
                return task
        raise DatasetError(
            f"task set {self.set_id} has no task of size {target_size}"
        )


def _edge(u: int, v: int, fk_name: str, source_vertex: int) -> JoinTreeEdge:
    return JoinTreeEdge(u=u, v=v, fk_name=fk_name, source_vertex=source_vertex)


def _task(
    name: str,
    dataset: str,
    tree: JoinTree,
    projections: list[tuple[str, int, str]],
) -> MappingTask:
    """Build a task from ``(column name, vertex, attribute)`` triples."""
    columns = tuple(column for column, _vertex, _attribute in projections)
    mapping = MappingPath(
        tree,
        {
            index: (vertex, attribute)
            for index, (_column, vertex, attribute) in enumerate(projections)
        },
    )
    return MappingTask(name=name, dataset=dataset, columns=columns, goal=mapping)


# ----------------------------------------------------------------------
# Task sets over the Yahoo-Movies-like schema
# ----------------------------------------------------------------------

def _task_set_1() -> TaskSet:
    """Two joins: movie — direct — person."""
    tree = JoinTree(
        {0: "movie", 1: "direct", 2: "person"},
        (
            _edge(0, 1, "direct_mid", 1),
            _edge(1, 2, "direct_pid", 1),
        ),
    )
    # Task columns are deliberately selective (dates, names, free text):
    # with a low-cardinality column such as ``mpaa_rating`` there almost
    # always exists *another* movie by the same director carrying the
    # same value, which makes redundant mapping variants extensionally
    # indistinguishable from the goal — no amount of samples could ever
    # converge.  The paper's tasks (Figure 11) use selective attributes
    # for the same reason.
    base = [
        ("Movie", 0, "title"),
        ("Director", 2, "name"),
        ("ReleaseDate", 0, "release_date"),
        ("Birthdate", 2, "birthdate"),
        ("Birthplace", 2, "birthplace"),
        ("Plot", 0, "plot"),
    ]
    tasks = tuple(
        _task(f"ts1-m{size}", "yahoo", tree, base[:size]) for size in range(3, 7)
    )
    return TaskSet(set_id=1, n_joins=2, tasks=tasks)


def _task_set_2() -> TaskSet:
    """Three joins: dvd — movie — direct — person."""
    tree = JoinTree(
        {0: "dvd", 1: "movie", 2: "direct", 3: "person"},
        (
            _edge(0, 1, "dvd_mid", 0),
            _edge(1, 2, "direct_mid", 2),
            _edge(2, 3, "direct_pid", 2),
        ),
    )
    base = [
        ("Movie", 1, "title"),
        ("Director", 3, "name"),
        ("DvdDate", 0, "release_date"),
        ("MovieDate", 1, "release_date"),
        ("Birthplace", 3, "birthplace"),
        ("Birthdate", 3, "birthdate"),
    ]
    tasks = tuple(
        _task(f"ts2-m{size}", "yahoo", tree, base[:size]) for size in range(3, 7)
    )
    return TaskSet(set_id=2, n_joins=3, tasks=tasks)


def _task_set_3() -> TaskSet:
    """Four joins: company — produce — movie — direct — person."""
    tree = JoinTree(
        {0: "movie", 1: "direct", 2: "person", 3: "produce", 4: "company"},
        (
            _edge(0, 1, "direct_mid", 1),
            _edge(1, 2, "direct_pid", 1),
            _edge(0, 3, "produce_mid", 3),
            _edge(3, 4, "produce_cid", 3),
        ),
    )
    base = [
        ("Movie", 0, "title"),
        ("Director", 2, "name"),
        ("Producer", 4, "name"),
        ("ReleaseDate", 0, "release_date"),
        ("Birthdate", 2, "birthdate"),
        ("CompanyCountry", 4, "country"),
    ]
    tasks = tuple(
        _task(f"ts3-m{size}", "yahoo", tree, base[:size]) for size in range(3, 7)
    )
    return TaskSet(set_id=3, n_joins=4, tasks=tasks)


def build_task_sets() -> tuple[TaskSet, TaskSet, TaskSet]:
    """The three task sets of Section 6.2, over the Yahoo-like schema."""
    return (_task_set_1(), _task_set_2(), _task_set_3())


# ----------------------------------------------------------------------
# The user-study task (Figure 11)
# ----------------------------------------------------------------------

def user_study_task_yahoo() -> MappingTask:
    """Figure 11(a): movie / release date / production company / director."""
    tree = JoinTree(
        {0: "movie", 1: "produce", 2: "company", 3: "direct", 4: "person"},
        (
            _edge(0, 1, "produce_mid", 1),
            _edge(1, 2, "produce_cid", 1),
            _edge(0, 3, "direct_mid", 3),
            _edge(3, 4, "direct_pid", 3),
        ),
    )
    return _task(
        "user-study-yahoo",
        "yahoo",
        tree,
        [
            ("Movie", 0, "title"),
            ("ReleaseDate", 0, "release_date"),
            ("ProductionCompany", 2, "name"),
            ("Director", 4, "name"),
        ],
    )


def user_study_task_imdb() -> MappingTask:
    """Figure 11(b): the same target over the IMDb-like schema."""
    tree = JoinTree(
        {
            0: "title",
            1: "movie_info",
            2: "movie_companies",
            3: "company_name",
            4: "cast_info",
            5: "name",
        },
        (
            _edge(0, 1, "movie_info_tid", 1),
            _edge(0, 2, "movie_companies_tid", 2),
            _edge(2, 3, "movie_companies_cid", 2),
            _edge(0, 4, "cast_info_tid", 4),
            _edge(4, 5, "cast_info_nid", 4),
        ),
    )
    return _task(
        "user-study-imdb",
        "imdb",
        tree,
        [
            ("Movie", 0, "title"),
            ("ReleaseDate", 1, "info"),
            ("ProductionCompany", 3, "name"),
            ("Director", 5, "name"),
        ],
    )
