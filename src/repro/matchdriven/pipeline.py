"""The mapping phase of the match-driven pipeline.

Given one correspondence per target column, Clio-style systems derive
an executable mapping by joining the matched relations along foreign
keys.  We use the standard heuristic: connect the matched relations
with a shortest-join-path (approximate Steiner) tree over the schema
graph, taking the *first* shortest path found whenever several exist.

That last clause is the point: when ``movie`` and ``person`` are
connected by both ``direct`` and ``write``, the pipeline silently picks
one — the behaviour the paper criticises ("current match-driven systems
usually pick only one mapping, which may not be the desired one").
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.mapping_path import MappingPath
from repro.graphs.schema_graph import SchemaGraph
from repro.graphs.walks import Walk, enumerate_walks
from repro.matchdriven.matcher import Correspondence, propose_correspondences
from repro.relational.database import Database
from repro.relational.query import JoinTree, JoinTreeEdge
from repro.text.errors import ErrorModel

#: Bound on the shortest-path search between two matched relations.
MAX_CONNECTION_JOINS = 4


@dataclass
class MatchDrivenResult:
    """Outcome of the pipeline: proposals, choices and the one mapping."""

    proposals: dict[int, list[Correspondence]]
    chosen: dict[int, Correspondence]
    mapping: MappingPath | None
    #: Columns for which no correspondence could be proposed.
    unmatched: tuple[int, ...] = ()


def _shortest_walk(
    graph: SchemaGraph, start: str, goal: str
) -> Walk | None:
    """First shortest walk from ``start`` to ``goal`` (BFS order)."""
    for walk in enumerate_walks(graph, start, MAX_CONNECTION_JOINS):
        if walk.end == goal:
            return walk
    return None


def _attach_walk(
    vertices: dict[int, str],
    edges: list[JoinTreeEdge],
    relation_vertex: dict[str, int],
    walk: Walk,
) -> None:
    """Graft ``walk`` onto the growing tree, reusing existing vertices.

    The walk starts at a relation already in the tree; each subsequent
    relation is reused when already present (first occurrence wins) and
    created otherwise — the usual greedy Steiner approximation.
    """
    current = relation_vertex[walk.start]
    for step in walk.steps:
        existing = relation_vertex.get(step.to_relation)
        if existing is not None and any(
            (edge.u == current and edge.v == existing)
            or (edge.u == existing and edge.v == current)
            for edge in edges
        ):
            current = existing
            continue
        if existing is None:
            vertex = max(vertices) + 1
            vertices[vertex] = step.to_relation
            relation_vertex[step.to_relation] = vertex
        else:
            vertex = existing
        source_vertex = current if step.from_is_source else vertex
        edges.append(
            JoinTreeEdge(
                u=current, v=vertex, fk_name=step.edge.name,
                source_vertex=source_vertex,
            )
        )
        current = vertex


def match_driven_mapping(
    db: Database,
    column_names: Sequence[str],
    *,
    samples_by_column: Mapping[int, Sequence[str]] | None = None,
    model: ErrorModel | None = None,
) -> MatchDrivenResult:
    """Run the two-phase match-driven pipeline end to end.

    Phase one proposes correspondences; the pipeline auto-accepts the
    top proposal per column (a human would review here).  Phase two
    connects the matched relations with first-shortest join paths and
    returns a single mapping — or ``None`` when a column is unmatched
    or the relations cannot be connected within the join bound.
    """
    proposals = propose_correspondences(
        db, column_names, samples_by_column=samples_by_column, model=model
    )
    unmatched = tuple(
        column for column, ranked in proposals.items() if not ranked
    )
    if unmatched:
        return MatchDrivenResult(proposals, {}, None, unmatched)

    chosen = {column: ranked[0] for column, ranked in proposals.items()}
    graph = SchemaGraph(db.schema)

    ordered = [chosen[column] for column in sorted(chosen)]
    first = ordered[0]
    vertices: dict[int, str] = {0: first.relation}
    edges: list[JoinTreeEdge] = []
    relation_vertex = {first.relation: 0}
    for correspondence in ordered[1:]:
        if correspondence.relation in relation_vertex:
            continue
        # connect the new relation to any relation already in the tree
        walk = None
        for anchored in list(relation_vertex):
            walk = _shortest_walk(graph, anchored, correspondence.relation)
            if walk is not None:
                break
        if walk is None:
            return MatchDrivenResult(proposals, chosen, None, ())
        _attach_walk(vertices, edges, relation_vertex, walk)

    projections = {
        column: (relation_vertex[c.relation], c.attribute)
        for column, c in chosen.items()
    }
    try:
        tree = JoinTree(vertices, tuple(edges))
        mapping = MappingPath(tree, projections)
    except Exception:
        # The greedy grafting produced a non-tree (rare with dense
        # schemas); the pipeline gives up, as real tools make the user
        # repair the mapping manually.
        return MatchDrivenResult(proposals, chosen, None, ())
    return MatchDrivenResult(proposals, chosen, mapping, ())
