"""Unit tests for the value corpus."""

from repro.datasets.corpus import Corpus


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Corpus(3), Corpus(3)
        assert [a.person_name() for _ in range(10)] == [
            b.person_name() for _ in range(10)
        ]

    def test_different_seed_different_stream(self):
        a, b = Corpus(3), Corpus(4)
        assert [a.person_name() for _ in range(10)] != [
            b.person_name() for _ in range(10)
        ]


class TestFactories:
    def test_person_name_two_words(self):
        corpus = Corpus(0)
        assert len(corpus.person_name().split()) == 2

    def test_movie_title_unique_at_scale(self):
        corpus = Corpus(0)
        titles = [corpus.movie_title(i) for i in range(2000)]
        # serial suffix guarantees distinguishability past the corpus
        assert len(set(titles)) > 1000

    def test_date_format_and_range(self):
        corpus = Corpus(0)
        for _ in range(50):
            date = corpus.date(1990, 2000)
            year, month, day = date.split("-")
            assert 1990 <= int(year) <= 2000
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_logline_echoes_title_sometimes(self):
        corpus = Corpus(1)
        title = "The Crimson Horizon"
        echoes = sum(
            title in corpus.logline(title, echo_title_probability=1.0)
            for _ in range(20)
        )
        assert echoes > 0

    def test_logline_no_echo_when_probability_zero(self):
        corpus = Corpus(1)
        title = "XQZ Unique Marker"
        for _ in range(20):
            assert title not in corpus.logline(title, echo_title_probability=0.0)

    def test_company_name_nonempty(self):
        assert Corpus(0).company_name()

    def test_zipf_index_bounds(self):
        corpus = Corpus(0)
        for n in (1, 2, 10, 100):
            for _ in range(50):
                assert 0 <= corpus.zipf_index(n) < n

    def test_zipf_skews_low(self):
        corpus = Corpus(0)
        draws = [corpus.zipf_index(100) for _ in range(2000)]
        low = sum(1 for d in draws if d < 50)
        assert low > len(draws) * 0.55  # more than uniform's 50%
