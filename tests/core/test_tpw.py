"""End-to-end tests of the TPW engine on the running example."""

import pytest

from repro.config import TPWConfig
from repro.core.tpw import TPWEngine
from repro.exceptions import SessionError
from repro.text.errors import CaseTokenModel

MODEL = CaseTokenModel()


@pytest.fixture()
def engine(running_db):
    return TPWEngine(running_db)


class TestRunningExample:
    def test_example_2_two_candidates(self, engine):
        """Avatar's director also wrote it: direct & write variants."""
        result = engine.search(
            ("Avatar", "James Cameron", "Lightstorm Co.", "New Zealand")
        )
        assert result.n_candidates == 2
        fks = {
            frozenset(edge.fk_name for edge in candidate.mapping.tree.edges)
            for candidate in result.candidates
        }
        assert any("direct_mid" in group for group in fks)
        assert any("write_mid" in group for group in fks)

    def test_example_1_yates_converges_immediately(self, engine):
        """Yates directed but did not write Harry Potter: one candidate."""
        result = engine.search(("Harry Potter", "David Yates"))
        assert result.n_candidates == 1
        assert result.best().mapping.attribute_of(1) == ("person", "name")
        edge_fks = {edge.fk_name for edge in result.best().mapping.tree.edges}
        assert "direct_mid" in edge_fks

    def test_rowling_goes_through_write(self, engine):
        result = engine.search(("Harry Potter", "J. K. Rowling"))
        assert result.n_candidates == 1
        edge_fks = {edge.fk_name for edge in result.best().mapping.tree.edges}
        assert "write_mid" in edge_fks

    def test_ambiguous_ed_wood(self, engine):
        """'Ed Wood' is a title, a name and a logline fragment."""
        result = engine.search(("Ed Wood",))
        attributes = {
            candidate.mapping.attribute_of(0) for candidate in result.candidates
        }
        assert ("movie", "title") in attributes
        assert ("person", "name") in attributes
        assert ("movie", "logline") in attributes

    def test_absent_sample_no_candidates(self, engine):
        result = engine.search(("Avatar", "Nobody Anywhere"))
        assert result.n_candidates == 0
        assert result.location_map.empty_keys() == (1,)
        assert result.best() is None

    def test_empty_tuple_rejected(self, engine):
        with pytest.raises(SessionError):
            engine.search(())

    def test_all_candidates_are_complete(self, engine):
        result = engine.search(("Avatar", "James Cameron", "Lightstorm Co."))
        for candidate in result.candidates:
            assert candidate.mapping.is_complete(3)

    def test_all_candidates_have_support(self, engine):
        result = engine.search(("Avatar", "James Cameron"))
        for candidate in result.candidates:
            assert candidate.support >= 1
            for path in candidate.tuple_paths:
                assert path.check_connected_in(engine.db)

    def test_candidates_sorted_by_score(self, engine):
        result = engine.search(("Ed Wood",))
        scores = [candidate.score for candidate in result.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_stats_recorded(self, engine):
        result = engine.search(("Avatar", "James Cameron"))
        stats = result.stats
        assert stats.pairwise_mapping_paths >= 2
        assert stats.pairwise_tuple_paths >= 1
        assert stats.valid_complete_mappings == result.n_candidates
        assert "total" in stats.timings

    def test_single_column_search(self, engine):
        result = engine.search(("New Zealand",))
        assert result.n_candidates == 1
        assert result.best().mapping.attribute_of(0) == ("location", "loc")
        assert result.best().mapping.n_joins == 0

    def test_deterministic_results(self, engine):
        one = engine.search(("Avatar", "James Cameron"))
        two = engine.search(("Avatar", "James Cameron"))
        assert [c.mapping.describe() for c in one.candidates] == [
            c.mapping.describe() for c in two.candidates
        ]

    def test_mappings_property(self, engine):
        result = engine.search(("Avatar", "James Cameron"))
        assert [m.signature() for m in result.mappings] == [
            c.mapping.signature() for c in result.candidates
        ]


class TestConfigEffects:
    def test_pmnj_zero_finds_single_relation_mappings_only(self, running_db):
        engine = TPWEngine(running_db, TPWConfig(pmnj=0))
        # Ed Wood the movie has 'Ed Wood' in title AND logline.
        result = engine.search(("Ed Wood", "Ed Wood"))
        assert result.n_candidates > 0
        for candidate in result.candidates:
            assert candidate.mapping.n_joins == 0

    def test_pmnj_one_misses_movie_person(self, running_db):
        engine = TPWEngine(running_db, TPWConfig(pmnj=1))
        result = engine.search(("Avatar", "James Cameron"))
        assert result.n_candidates == 0

    def test_exhaustive_weave_is_superset(self, running_db):
        greedy = TPWEngine(running_db, TPWConfig()).search(
            ("Avatar", "James Cameron", "Lightstorm Co.")
        )
        exhaustive = TPWEngine(
            running_db, TPWConfig(exhaustive_weave=True)
        ).search(("Avatar", "James Cameron", "Lightstorm Co."))
        greedy_signatures = {m.signature() for m in greedy.mappings}
        exhaustive_signatures = {m.signature() for m in exhaustive.mappings}
        assert greedy_signatures <= exhaustive_signatures

    def test_samples_coerced_to_str(self, engine):
        # numeric input is stringified, not an error
        result = engine.search((1999,))
        assert result.n_candidates >= 0


class TestGeneratedDataset(object):
    def test_yahoo_search_works(self, yahoo_db):
        engine = TPWEngine(yahoo_db)
        movie_title = yahoo_db.table("movie").value(0, "title")
        result = engine.search((movie_title,))
        assert result.n_candidates >= 1

    def test_imdb_search_works(self, imdb_db):
        engine = TPWEngine(imdb_db)
        title = imdb_db.table("title").value(0, "title")
        result = engine.search((title,))
        assert result.n_candidates >= 1
